// Per-conditional-message evaluation state (§2.5): folds the stream of
// incoming acknowledgments into the condition tree and decides success or
// failure.
//
// Decision rules (formalizing the paper's prose; see DESIGN.md §4):
//   * Leaf with own MsgPickUpTime T: satisfied once a matching recipient's
//     read timestamp <= send+T; violated as soon as now > send+T without
//     such a read. Analogous for MsgProcessingTime with the transactional
//     commit timestamp.
//   * A set's time conditions range over the leaf destinations of its
//     subtree. Without Min/Max they demand ALL leaves; with MinNr* m the
//     set needs >= m leaves within the deadline, and with MaxNr* M it is
//     violated if more than M leaves respond within the deadline.
//   * MinNrAnonymous/MaxNrAnonymous count readers not matching any leaf
//     (distinct named recipients; unassigned anonymous reads counted each).
//   * A node is violated if any of its own parts is violated or any child
//     is violated ("if any single condition is violated, the overall
//     outcome ... is declared to be a failure"); satisfied when all own
//     parts and all children are satisfied; otherwise pending.
//   * Evaluation is monotone: once a verdict of success/failure is
//     reached it never changes, and every condition resolves no later
//     than its deadline, so evaluation always terminates by the largest
//     deadline (or the explicit evaluation timeout, whichever is first).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "cm/compiled_eval.hpp"
#include "cm/condition.hpp"
#include "cm/control.hpp"
#include "util/clock.hpp"

namespace cmx::cm {

// Which evaluation engine an EvalState uses (DESIGN.md §12). kAuto reads
// the process-wide compiled_eval_enabled() toggle at construction; the
// explicit values pin one engine for A/B comparisons regardless of it.
enum class EvalEngine { kAuto, kCompiled, kInterpretive };

struct EvalStateOptions {
  // Early failure detection (the default, matching §2.5): a violated
  // required condition or unreachable cardinality fails the message as
  // soon as it is known. When disabled (ablation), failure is only
  // declared once every deadline has passed (or at the evaluation
  // timeout) — success can still be declared early either way.
  bool early_failure_detection = true;
  EvalEngine engine = EvalEngine::kAuto;
};

class EvalState {
 public:
  // `condition` must be valid (validate() == OK); it is cloned so later
  // caller mutations cannot affect a running evaluation.
  // `evaluation_timeout_ms` is relative to send_ts; 0 means "no explicit
  // timeout" (evaluation still resolves at the largest condition deadline).
  EvalState(std::string cm_id, const Condition& condition,
            util::TimeMs send_ts, util::TimeMs evaluation_timeout_ms = 0,
            EvalStateOptions options = {});

  const std::string& cm_id() const { return cm_id_; }
  util::TimeMs send_ts() const { return send_ts_; }

  // Feeds one acknowledgment. Acks arriving after a decision are ignored.
  void add_ack(const AckRecord& ack);

  struct Verdict {
    TriState state = TriState::kPending;
    std::string reason;  // for kViolated / timeout: what failed
  };

  // Evaluates at (sender-clock) time `now`. Monotone.
  Verdict evaluate(util::TimeMs now);

  // Earliest time strictly after `now` at which evaluate() could change
  // its verdict; kNoDeadline once decided. O(log D) in the number of
  // distinct condition deadlines: they are all fixed at construction
  // (absolute offsets from send_ts), so the candidate wake-up times are
  // precomputed and binary-searched instead of re-collected per call —
  // this sits on the evaluation engine's per-event hot path.
  util::TimeMs next_deadline(util::TimeMs now) const;

  // ---- introspection (tests, stats) -------------------------------------
  std::size_t ack_count() const { return acks_seen_; }
  bool decided() const { return decided_.has_value(); }
  // True when this state runs the compiled incremental engine.
  bool compiled() const { return compiled_ != nullptr; }
  // One-line header (engine, ack count, verdict) plus — for the compiled
  // engine — per-node residual counts (dump_evaluation, introspect_test).
  void dump(std::ostream& os) const;

 private:
  struct LeafState {
    const Destination* leaf = nullptr;
    std::optional<util::TimeMs> read_ts;
    std::optional<util::TimeMs> processing_ts;
  };

  struct NodeVerdict {
    TriState state = TriState::kSatisfied;
    std::string reason;
  };

  // Returns indices of leaf states under `node` (cached per node).
  const std::vector<std::size_t>& subtree_leaves(const Condition* node);

  NodeVerdict eval_node(const Condition* node, util::TimeMs now);
  NodeVerdict eval_leaf(const LeafState& ls, util::TimeMs now) const;
  NodeVerdict eval_set(const DestinationSet* set, util::TimeMs now);

  void collect_deadlines(const Condition* node,
                         std::vector<util::TimeMs>& out) const;

  static TriState combine(TriState a, TriState b);

  const std::string cm_id_;
  const util::TimeMs send_ts_;
  const util::TimeMs evaluation_timeout_ms_;
  const EvalStateOptions options_;
  util::TimeMs max_deadline_ = 0;  // largest condition deadline (absolute)
  // Sorted distinct absolute times at which a verdict can flip without an
  // ack (each condition deadline resolves at deadline+1; plus the explicit
  // evaluation timeout). Fixed at construction.
  std::vector<util::TimeMs> wakeups_;
  ConditionPtr condition_;

  std::vector<LeafState> leaf_states_;
  std::map<const Condition*, std::vector<std::size_t>> subtree_cache_;

  // O(1) ack assignment (shared by both engines): exact
  // (queue, recipient) -> first matching leaf, and queue -> anonymous
  // leaves in tree order (preserving the original scan's preferences).
  std::unordered_map<std::string, std::size_t> exact_leaf_;
  std::unordered_map<std::string, std::vector<std::size_t>> anon_leaves_;

  // Compiled incremental engine; nullptr means the interpretive walker.
  std::unique_ptr<CompiledEval> compiled_;

  // Acks not assigned to any leaf; feed set-level anonymous counts.
  std::vector<AckRecord> unassigned_acks_;
  std::size_t acks_seen_ = 0;

  std::optional<Verdict> decided_;
};

}  // namespace cmx::cm
