// CompensationManager (§2.6): stages compensation messages on the
// persistent DS.COMP.Q at send time, and performs outcome actions once the
// evaluation manager reaches a verdict:
//   failure  → release the staged compensation messages to every
//              destination the original message was delivered to;
//   success  → optionally send success notifications to all destinations
//              and discard the staged compensations.
//
// Compensation messages are correlated to the original standard message
// they compensate (correlation_id = original message id), which is what
// the receiver side uses for annihilation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cm/control.hpp"
#include "mq/queue_manager.hpp"

namespace cmx::cm {

struct CompensationStats {
  std::uint64_t staged = 0;
  std::uint64_t released = 0;
  std::uint64_t discarded = 0;
  std::uint64_t success_notifications = 0;
};

class CompensationManager {
 public:
  explicit CompensationManager(mq::QueueManager& qm);

  CompensationManager(const CompensationManager&) = delete;
  CompensationManager& operator=(const CompensationManager&) = delete;

  // Creates one compensation message per delivery and parks them on
  // DS.COMP.Q (paper: "generated ... at the time the original messages are
  // created and sent out"). `compensation_body` empty+absent produces the
  // system-generated compensation (sendMessage/2); a value produces the
  // application-defined compensation (sendMessage/3).
  util::Status stage(
      const std::string& cm_id,
      const std::optional<std::string>& compensation_body,
      const std::vector<std::pair<mq::QueueAddress, std::string>>& deliveries);

  // Builds the compensation messages stage() would put, without putting
  // them — the sender folds them into the same atomic batch as the SLOG
  // entry and the fan-out. Callers must invoke note_staged(n) once the
  // messages have durably reached DS.COMP.Q.
  std::vector<mq::Message> build_staged(
      const std::string& cm_id,
      const std::optional<std::string>& compensation_body,
      const std::vector<std::pair<mq::QueueAddress, std::string>>& deliveries)
      const;
  void note_staged(std::size_t n);

  // Failure action: move every staged compensation for `cm_id` from
  // DS.COMP.Q to its recorded destination.
  util::Status release(const std::string& cm_id);

  // Success actions.
  util::Status discard(const std::string& cm_id);
  util::Status send_success_notifications(
      const std::string& cm_id,
      const std::vector<std::pair<mq::QueueAddress, std::string>>& deliveries);

  // Number of compensation messages currently staged for `cm_id`.
  std::size_t staged_count(const std::string& cm_id) const;

  CompensationStats stats() const;

 private:
  // Destructively collects all staged compensations for cm_id.
  std::vector<mq::Message> take_staged(const std::string& cm_id);

  mq::QueueManager& qm_;
  mutable std::mutex mu_;
  CompensationStats stats_;
};

}  // namespace cmx::cm
