#include "cm/condition.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/codec.hpp"

namespace cmx::cm {

// ---------------------------------------------------------------------
// Condition (base)
// ---------------------------------------------------------------------

void Condition::add(ConditionPtr) {
  throw std::logic_error("add() on a leaf Condition");
}
void Condition::remove(const ConditionPtr&) {
  throw std::logic_error("remove() on a leaf Condition");
}
const std::vector<ConditionPtr>& Condition::children() const {
  static const std::vector<ConditionPtr> kEmpty;
  return kEmpty;
}

void Condition::copy_base_to(Condition& other) const {
  other.pick_up_ = pick_up_;
  other.processing_ = processing_;
  other.expiry_ = expiry_;
  other.persistence_ = persistence_;
  other.priority_ = priority_;
}

std::vector<const Destination*> Condition::leaves() const {
  std::vector<const Destination*> out;
  if (const auto* dest = as_destination()) {
    out.push_back(dest);
    return out;
  }
  for (const auto& child : children()) {
    auto sub = child->leaves();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

util::Status Condition::validate() const {
  std::vector<const Condition*> path;
  if (auto s = validate_tree(path); !s) return s;
  if (leaves().empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "condition has no destinations");
  }
  return util::ok_status();
}

util::Status Condition::validate_tree(
    std::vector<const Condition*>& path) const {
  using util::ErrorCode;
  if (std::find(path.begin(), path.end(), this) != path.end()) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "condition tree contains a cycle");
  }
  // Shared structure (a node reachable twice) would make ack accounting
  // ambiguous; forbid it by checking global uniqueness, not just the path.
  // `path` doubles as the visited set because validate_tree visits nodes
  // in preorder and never removes entries.
  path.push_back(this);

  if (auto pick_up = msg_pick_up_time();
      pick_up.has_value() && *pick_up <= 0) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "MsgPickUpTime must be positive");
  }
  if (auto processing = msg_processing_time();
      processing.has_value() && *processing <= 0) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "MsgProcessingTime must be positive");
  }
  if (auto expiry = msg_expiry(); expiry.has_value() && *expiry <= 0) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "MsgExpiry must be positive");
  }
  if (auto priority = msg_priority();
      priority.has_value() &&
      (*priority < mq::kMinPriority || *priority > mq::kMaxPriority)) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "MsgPriority out of range 0..9");
  }
  if (auto s = validate_node(); !s) return s;
  for (const auto& child : children()) {
    if (child == nullptr) {
      return util::make_error(ErrorCode::kInvalidArgument, "null child");
    }
    if (auto s = child->validate_tree(path); !s) return s;
  }
  return util::ok_status();
}

// ---------------------------------------------------------------------
// Destination
// ---------------------------------------------------------------------

std::shared_ptr<Destination> Destination::make(mq::QueueAddress address,
                                               std::string recipient_id) {
  auto dest = std::shared_ptr<Destination>(new Destination());
  dest->address_ = std::move(address);
  dest->recipient_id_ = std::move(recipient_id);
  return dest;
}

ConditionPtr Destination::clone() const {
  auto copy = std::shared_ptr<Destination>(new Destination());
  copy_base_to(*copy);
  copy->address_ = address_;
  copy->recipient_id_ = recipient_id_;
  return copy;
}

util::Status Destination::validate_node() const {
  if (address_.queue.empty()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "Destination must specify a queue");
  }
  return util::ok_status();
}

std::string Destination::describe() const {
  std::ostringstream out;
  out << "Destination(" << address_.to_string();
  if (!recipient_id_.empty()) out << ", recipient=" << recipient_id_;
  if (auto t = msg_pick_up_time()) out << ", pickUp=" << *t << "ms";
  if (auto t = msg_processing_time()) out << ", processing=" << *t << "ms";
  out << (required() ? ", required" : ", optional") << ")";
  return out.str();
}

// ---------------------------------------------------------------------
// DestinationSet
// ---------------------------------------------------------------------

std::shared_ptr<DestinationSet> DestinationSet::make() {
  return std::shared_ptr<DestinationSet>(new DestinationSet());
}

void DestinationSet::add(ConditionPtr child) {
  if (child == nullptr) {
    throw std::logic_error("DestinationSet::add(nullptr)");
  }
  children_.push_back(std::move(child));
}

void DestinationSet::remove(const ConditionPtr& child) {
  children_.erase(std::remove(children_.begin(), children_.end(), child),
                  children_.end());
}

ConditionPtr DestinationSet::clone() const {
  auto copy = std::shared_ptr<DestinationSet>(new DestinationSet());
  copy_base_to(*copy);
  copy->min_pick_up_ = min_pick_up_;
  copy->max_pick_up_ = max_pick_up_;
  copy->min_processing_ = min_processing_;
  copy->max_processing_ = max_processing_;
  copy->min_anonymous_ = min_anonymous_;
  copy->max_anonymous_ = max_anonymous_;
  for (const auto& child : children_) {
    copy->children_.push_back(child->clone());
  }
  return copy;
}

util::Status DestinationSet::validate_node() const {
  using util::ErrorCode;
  auto check_pair = [](std::optional<int> lo, std::optional<int> hi,
                       const char* what) -> util::Status {
    if (lo.has_value() && *lo < 0) {
      return util::make_error(ErrorCode::kInvalidArgument,
                              std::string("negative Min") + what);
    }
    if (hi.has_value() && *hi < 0) {
      return util::make_error(ErrorCode::kInvalidArgument,
                              std::string("negative Max") + what);
    }
    if (lo.has_value() && hi.has_value() && *lo > *hi) {
      return util::make_error(ErrorCode::kInvalidArgument,
                              std::string("Min") + what + " > Max" + what);
    }
    return util::ok_status();
  };
  if (auto s = check_pair(min_pick_up_, max_pick_up_, "NrPickUp"); !s) {
    return s;
  }
  if (auto s = check_pair(min_processing_, max_processing_, "NrProcessing");
      !s) {
    return s;
  }
  if (auto s = check_pair(min_anonymous_, max_anonymous_, "NrAnonymous");
      !s) {
    return s;
  }
  // Cardinality subsets are meaningful only with an associated deadline
  // (paper: the Min/Max values narrow the set's time condition).
  const bool has_pick_up_card =
      min_pick_up_.has_value() || max_pick_up_.has_value() ||
      min_anonymous_.has_value() || max_anonymous_.has_value();
  if (has_pick_up_card && !msg_pick_up_time().has_value()) {
    return util::make_error(
        ErrorCode::kInvalidArgument,
        "pick-up/anonymous cardinality requires MsgPickUpTime on the set");
  }
  const bool has_processing_card =
      min_processing_.has_value() || max_processing_.has_value();
  if (has_processing_card && !msg_processing_time().has_value()) {
    return util::make_error(
        ErrorCode::kInvalidArgument,
        "processing cardinality requires MsgProcessingTime on the set");
  }
  // A named-leaf minimum larger than the subtree can never be satisfied.
  const auto leaf_count = static_cast<int>(leaves().size());
  if (min_pick_up_.has_value() && *min_pick_up_ > leaf_count) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "MinNrPickUp exceeds number of destinations");
  }
  if (min_processing_.has_value() && *min_processing_ > leaf_count) {
    return util::make_error(ErrorCode::kInvalidArgument,
                            "MinNrProcessing exceeds number of destinations");
  }
  return util::ok_status();
}

std::string DestinationSet::describe() const {
  std::ostringstream out;
  out << "DestinationSet(";
  if (auto t = msg_pick_up_time()) out << "pickUp=" << *t << "ms ";
  if (auto t = msg_processing_time()) out << "processing=" << *t << "ms ";
  if (min_pick_up_) out << "minPickUp=" << *min_pick_up_ << " ";
  if (max_pick_up_) out << "maxPickUp=" << *max_pick_up_ << " ";
  if (min_processing_) out << "minProcessing=" << *min_processing_ << " ";
  if (max_processing_) out << "maxProcessing=" << *max_processing_ << " ";
  if (min_anonymous_) out << "minAnon=" << *min_anonymous_ << " ";
  if (max_anonymous_) out << "maxAnon=" << *max_anonymous_ << " ";
  out << "children=[";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out << ", ";
    out << children_[i]->describe();
  }
  out << "])";
  return out.str();
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

class ConditionCodec {
 public:
  static constexpr std::uint8_t kLeafTag = 0;
  static constexpr std::uint8_t kSetTag = 1;
  static constexpr std::uint32_t kVersion = 1;

  static void encode_node(const Condition& node, util::BinaryWriter& w) {
    w.put_u8(node.is_leaf() ? kLeafTag : kSetTag);
    encode_opt_i64(node.pick_up_, w);
    encode_opt_i64(node.processing_, w);
    encode_opt_i64(node.expiry_, w);
    w.put_bool(node.persistence_.has_value());
    if (node.persistence_) {
      w.put_u8(static_cast<std::uint8_t>(*node.persistence_));
    }
    encode_opt_int(node.priority_, w);
    if (const auto* dest = node.as_destination()) {
      w.put_string(dest->address_.qmgr);
      w.put_string(dest->address_.queue);
      w.put_string(dest->recipient_id_);
    } else {
      const auto* set = node.as_destination_set();
      encode_opt_int(set->min_pick_up_, w);
      encode_opt_int(set->max_pick_up_, w);
      encode_opt_int(set->min_processing_, w);
      encode_opt_int(set->max_processing_, w);
      encode_opt_int(set->min_anonymous_, w);
      encode_opt_int(set->max_anonymous_, w);
      w.put_u32(static_cast<std::uint32_t>(set->children_.size()));
      for (const auto& child : set->children_) {
        encode_node(*child, w);
      }
    }
  }

  static util::Result<ConditionPtr> decode_node(util::BinaryReader& r) {
    auto tag = r.get_u8();
    if (!tag) return tag.status();
    ConditionPtr node;
    if (tag.value() == kLeafTag) {
      node = std::shared_ptr<Destination>(new Destination());
    } else if (tag.value() == kSetTag) {
      node = std::shared_ptr<DestinationSet>(new DestinationSet());
    } else {
      return util::make_error(util::ErrorCode::kIoError,
                              "bad condition node tag");
    }
    if (auto s = decode_opt_i64(node->pick_up_, r); !s) return s;
    if (auto s = decode_opt_i64(node->processing_, r); !s) return s;
    if (auto s = decode_opt_i64(node->expiry_, r); !s) return s;
    auto has_persistence = r.get_bool();
    if (!has_persistence) return has_persistence.status();
    if (has_persistence.value()) {
      auto p = r.get_u8();
      if (!p) return p.status();
      node->persistence_ = static_cast<mq::Persistence>(p.value());
    }
    if (auto s = decode_opt_int(node->priority_, r); !s) return s;

    if (tag.value() == kLeafTag) {
      auto* dest = static_cast<Destination*>(node.get());
      auto qmgr = r.get_string();
      if (!qmgr) return qmgr.status();
      auto queue = r.get_string();
      if (!queue) return queue.status();
      auto recipient = r.get_string();
      if (!recipient) return recipient.status();
      dest->address_ = mq::QueueAddress(std::move(qmgr).value(),
                                        std::move(queue).value());
      dest->recipient_id_ = std::move(recipient).value();
      return node;
    }
    auto* set = static_cast<DestinationSet*>(node.get());
    if (auto s = decode_opt_int(set->min_pick_up_, r); !s) return s;
    if (auto s = decode_opt_int(set->max_pick_up_, r); !s) return s;
    if (auto s = decode_opt_int(set->min_processing_, r); !s) return s;
    if (auto s = decode_opt_int(set->max_processing_, r); !s) return s;
    if (auto s = decode_opt_int(set->min_anonymous_, r); !s) return s;
    if (auto s = decode_opt_int(set->max_anonymous_, r); !s) return s;
    auto count = r.get_u32();
    if (!count) return count.status();
    for (std::uint32_t i = 0; i < count.value(); ++i) {
      auto child = decode_node(r);
      if (!child) return child;
      set->children_.push_back(std::move(child).value());
    }
    return node;
  }

 private:
  static void encode_opt_i64(const std::optional<util::TimeMs>& v,
                             util::BinaryWriter& w) {
    w.put_bool(v.has_value());
    if (v) w.put_i64(*v);
  }
  static util::Status decode_opt_i64(std::optional<util::TimeMs>& out,
                                     util::BinaryReader& r) {
    auto has = r.get_bool();
    if (!has) return has.status();
    if (has.value()) {
      auto v = r.get_i64();
      if (!v) return v.status();
      out = v.value();
    }
    return util::ok_status();
  }
  static void encode_opt_int(const std::optional<int>& v,
                             util::BinaryWriter& w) {
    w.put_bool(v.has_value());
    if (v) w.put_i64(*v);
  }
  static util::Status decode_opt_int(std::optional<int>& out,
                                     util::BinaryReader& r) {
    auto has = r.get_bool();
    if (!has) return has.status();
    if (has.value()) {
      auto v = r.get_i64();
      if (!v) return v.status();
      out = static_cast<int>(v.value());
    }
    return util::ok_status();
  }
};

std::string Condition::encode() const {
  util::BinaryWriter w;
  w.put_u32(ConditionCodec::kVersion);
  ConditionCodec::encode_node(*this, w);
  return w.take();
}

util::Result<ConditionPtr> Condition::decode(std::string_view data) {
  util::BinaryReader r(data);
  auto version = r.get_u32();
  if (!version) return version.status();
  if (version.value() != ConditionCodec::kVersion) {
    return util::make_error(util::ErrorCode::kIoError,
                            "unknown condition codec version");
  }
  return ConditionCodec::decode_node(r);
}

}  // namespace cmx::cm
