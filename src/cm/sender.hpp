// ConditionalMessagingService: the sender-side facade of the conditional
// messaging system (paper §2.3–§2.6, Figure 9). It is "a simple
// indirection to standard messaging middleware": the application hands it
// message data and a Condition; the service
//
//   1. fans the conditional message out into one standard message per
//      destination queue, stamped with control properties,
//   2. writes a persistent sender-log entry (DS.SLOG.Q),
//   3. stages compensation messages (DS.COMP.Q),
//   4. registers the message with the evaluation manager, which consumes
//      acknowledgments (DS.ACK.Q) and decides success/failure,
//   5. on a verdict, publishes an outcome notification (DS.OUTCOME.Q) and
//      performs the outcome actions (release compensations on failure;
//      discard them — and optionally send success notifications — on
//      success), unless the message is part of a Dependency-Sphere, in
//      which case the actions are deferred to the sphere.
//
// The application can keep using the queue manager directly for
// unconditional messaging (paper Figure 6).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cm/compensation_manager.hpp"
#include "cm/condition.hpp"
#include "cm/control.hpp"
#include "cm/evaluation_manager.hpp"
#include "mq/queue_manager.hpp"

namespace cmx::cm {

// When compensation messages come into existence (ablation of the §2.6
// design decision).
enum class CompensationStaging {
  // The paper's design: created and persisted on DS.COMP.Q at send time,
  // which is what makes compensation crash-safe (a decided failure can
  // always be compensated from durable state).
  kAtSendTime,
  // Ablation: created only when the failure outcome is known. Cheaper
  // sends, but a crash between decision and release loses the
  // application's compensation data (the recovery marker can re-drive the
  // action, yet has nothing staged to send).
  kOnFailure,
};

struct SenderOptions {
  // Send success notifications to all destinations on message success
  // (§2.6 "the system can send out a notification message of evaluation
  // success to all destinations"). Per-send override in SendOptions.
  bool success_notifications = false;
  CompensationStaging compensation_staging = CompensationStaging::kAtSendTime;
  // Evaluation-engine tuning (shard count, ack drain batch size, decision
  // retention); see EvaluationOptions and DESIGN.md §8.
  EvaluationOptions evaluation;
};

struct SendOptions {
  // Hard cap on the evaluation (§2.5), relative to the send timestamp.
  // 0 = none; evaluation still terminates at the largest condition
  // deadline.
  util::TimeMs evaluation_timeout_ms = 0;
  std::optional<bool> success_notifications;
  // Dependency-Sphere members: record the outcome but defer the outcome
  // actions until the sphere resolves (§3.1). Set by DSphereService.
  bool defer_outcome_actions = false;
  // Application properties copied onto every generated standard message
  // (e.g. a topic tag, routing hints); CMX_-prefixed keys are reserved.
  std::map<std::string, mq::PropertyValue> properties;
  // Ablation switch, see EvalStateOptions::early_failure_detection.
  bool early_failure_detection = true;
};

struct SenderStats {
  std::uint64_t conditional_messages = 0;
  std::uint64_t standard_messages = 0;  // fan-out total
};

class ConditionalMessagingService {
 public:
  explicit ConditionalMessagingService(mq::QueueManager& qm,
                                       SenderOptions options = {});
  ~ConditionalMessagingService();

  ConditionalMessagingService(const ConditionalMessagingService&) = delete;
  ConditionalMessagingService& operator=(const ConditionalMessagingService&) =
      delete;

  // paper: sendMessage(Object, Condition) — system-generated compensation.
  util::Result<std::string> send_message(const std::string& body,
                                         const Condition& condition,
                                         SendOptions options = {});

  // paper: sendMessage(Object, Object, Condition) — application-defined
  // compensation data.
  util::Result<std::string> send_message(const std::string& body,
                                         const std::string& compensation_body,
                                         const Condition& condition,
                                         SendOptions options = {});

  // ---- outcome consumption (DS.OUTCOME.Q) --------------------------------
  // Next outcome notification of any conditional message.
  util::Result<OutcomeRecord> next_outcome(util::TimeMs timeout_ms);
  // Outcome notification for one conditional message (destructive).
  util::Result<OutcomeRecord> await_outcome(const std::string& cm_id,
                                            util::TimeMs timeout_ms);
  // The decided outcome, if any, without touching DS.OUTCOME.Q.
  std::optional<Outcome> outcome_of(const std::string& cm_id) const;

  // ---- Dependency-Sphere integration -------------------------------------
  // Listener invoked (on the evaluation thread) for every decision,
  // deferred or not. One listener; setting replaces.
  using OutcomeListener = std::function<void(const OutcomeRecord&)>;
  void set_outcome_listener(OutcomeListener listener);

  // Executes the deferred outcome actions for a sphere member once the
  // sphere has resolved: success_actions discards compensations (and sends
  // success notifications per options); failure_actions releases them.
  util::Status release_success_actions(const std::string& cm_id);
  util::Status release_failure_actions(const std::string& cm_id);
  // Forces a pending member to a verdict (sphere timeout/abort).
  util::Status force_decision(const std::string& cm_id, Outcome outcome,
                              const std::string& reason);

  // ---- recovery -------------------------------------------------------------
  // Rebuilds evaluation state from DS.SLOG.Q after a restart: every logged,
  // still-undecided conditional message is re-registered for evaluation.
  // (Acks consumed before the crash are lost — see DESIGN.md limitations —
  // so recovered messages may fail conservatively.)
  util::Status recover();

  SenderStats stats() const;
  EvaluationManager& evaluation_manager() { return *eval_; }
  CompensationManager& compensation_manager() { return *comp_; }
  mq::QueueManager& queue_manager() { return qm_; }

 private:
  struct Registration {
    std::vector<std::pair<mq::QueueAddress, std::string>> deliveries;
    bool success_notifications = false;
    bool deferred = false;
    // Only used in CompensationStaging::kOnFailure mode: the compensation
    // data to materialize when (and only when) the message fails.
    std::optional<std::string> deferred_compensation_body;
    bool stage_on_failure = false;
  };

  util::Result<std::string> send_internal(
      const std::string& body,
      const std::optional<std::string>& compensation_body,
      const Condition& condition, const SendOptions& options);

  void on_outcome(const OutcomeRecord& record, bool deferred);
  void run_outcome_actions(const std::string& cm_id, Outcome outcome,
                           const Registration& reg);
  util::Status release_deferred_actions(const std::string& cm_id,
                                        Outcome outcome);
  util::Status remove_slog_entry(const std::string& cm_id);
  util::Status remove_pending_marker(const std::string& cm_id);

  mq::QueueManager& qm_;
  const SenderOptions options_;
  std::unique_ptr<CompensationManager> comp_;
  std::unique_ptr<EvaluationManager> eval_;

  mutable std::mutex mu_;
  std::map<std::string, Registration> registry_;
  std::map<std::string, Outcome> outcomes_;
  OutcomeListener listener_;
  SenderStats stats_;
};

}  // namespace cmx::cm
