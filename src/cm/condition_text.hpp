// Human-readable text representation of condition trees — the "more
// flexible representation of conditions" the paper's future-work section
// (§4.2) calls for. Conditions can be authored in configuration files or
// message bodies and parsed at runtime, instead of being wired up in code.
//
// Grammar (S-expressions; keywords are case-sensitive):
//
//   condition := dest | set
//   dest      := '(' 'dest' address pair* ')'
//   set       := '(' 'set' pair* condition+ ')'
//   address   := string            ; "qmgr/queue" or "queue"
//   pair      := keyword value
//   keyword   := ':pickUp' | ':processing' | ':expiry' | ':priority'
//              | ':persistent' | ':recipient'
//              | ':minPickUp' | ':maxPickUp'
//              | ':minProcessing' | ':maxProcessing'
//              | ':minAnonymous' | ':maxAnonymous'
//   value     := duration | integer | boolean | string
//   duration  := integer ('ms' | 's' | 'm' | 'h' | 'd' | 'w')?   ; default ms
//
// Example (the paper's Example 1, Figure 4):
//
//   (set :pickUp 2d
//     (dest "QMB/Q.R3" :recipient "receiver3" :processing 1w)
//     (set :processing 3d :minProcessing 2
//       (dest "QMB/Q.R1" :recipient "receiver1")
//       (dest "QMB/Q.R2" :recipient "receiver2")
//       (dest "QMB/Q.R4" :recipient "receiver4")))
#pragma once

#include <string>

#include "cm/condition.hpp"
#include "util/status.hpp"

namespace cmx::cm {

// Parses the textual form. Returns kInvalidArgument with a
// position-tagged message on syntax errors; the resulting tree is NOT
// validated (call Condition::validate() before use, as with trees built
// in code).
util::Result<ConditionPtr> parse_condition_text(const std::string& text);

// Renders a condition tree in the grammar above. Durations are printed
// with the largest exact unit (e.g. 172800000 -> "2d"). The output parses
// back to an equivalent tree.
std::string condition_to_text(const Condition& condition);

}  // namespace cmx::cm
