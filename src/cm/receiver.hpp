// ConditionalReceiver: the receiver-side facade (paper §2.4, Figure 7).
// Final recipients read conditional messages through readMessage() and
// demarcate processing transactions with begin_tx()/commit_tx(); the
// service then generates the internal acknowledgments automatically:
//
//   * non-transactional read  → "read" ack, sent immediately;
//   * transactional read      → "processing" ack, emitted if and only if
//     the receiver's transaction commits (a rollback restores the message
//     to the queue and produces no ack — there is never more than one ack
//     per receiver per message).
//
// Every consumed conditional message is logged to the persistent
// DS.RLOG.Q. Compensation semantics (§2.6): when a compensation message
// and its original are both in the queue they annihilate (neither is
// delivered); a compensation is delivered to the application only when
// DS.RLOG.Q proves the original was consumed here.
#pragma once

#include <memory>
#include <string>

#include "cm/control.hpp"
#include "mq/queue_manager.hpp"
#include "mq/session.hpp"

namespace cmx::cm {

struct ReceivedMessage {
  mq::Message message;
  MessageKind kind = MessageKind::kData;
  std::string cm_id;  // empty for unconditional (plain) messages
  bool conditional = false;
  bool processing_required = false;

  std::string_view body() const { return message.body(); }
};

struct ReceiverStats {
  std::uint64_t delivered = 0;       // messages handed to the application
  std::uint64_t read_acks = 0;       // non-transactional acks sent
  std::uint64_t processing_acks = 0;  // commit-bound acks sent
  std::uint64_t annihilated = 0;     // original+compensation pairs removed
  std::uint64_t compensations_delivered = 0;
  std::uint64_t compensations_dropped = 0;  // original consumed elsewhere
};

class ConditionalReceiver {
 public:
  // `recipient_id` is this recipient's identification string (§2.2 "a
  // defined name such as a userid"); it is echoed in acknowledgments and
  // matched against Destination recipients. Empty = anonymous.
  ConditionalReceiver(mq::QueueManager& qm, std::string recipient_id = "");
  ~ConditionalReceiver();

  ConditionalReceiver(const ConditionalReceiver&) = delete;
  ConditionalReceiver& operator=(const ConditionalReceiver&) = delete;

  const std::string& recipient_id() const { return recipient_id_; }

  // paper: readMessage(String). Returns the next application-visible
  // message on `queue_name`: a conditional data message (triggering the
  // implicit ack protocol), an unconditional message (untouched), a
  // deliverable compensation, or a success notification. Annihilating
  // compensation pairs are consumed internally and never surface.
  util::Result<ReceivedMessage> read_message(const std::string& queue_name,
                                             util::TimeMs timeout_ms);

  // ---- transaction demarcation facade (paper §2.4) -----------------------
  util::Status begin_tx();
  util::Status commit_tx();
  util::Status rollback_tx();
  bool in_tx() const { return session_ != nullptr; }

  // The receiver may also send messages within the ongoing transaction
  // (the classic read-process-reply pattern); delegates to the session or
  // queue manager.
  util::Status put(const mq::QueueAddress& addr, mq::Message msg);

  ReceiverStats stats() const;

 private:
  // Handles one raw message; sets `out` when it is application-visible.
  // Returns false when the message was consumed internally (annihilation,
  // dropped compensation) and reading should continue.
  bool handle(mq::Message msg, ReceivedMessage& out);

  void handle_conditional_data(mq::Message msg, ReceivedMessage& out);
  bool handle_compensation(mq::Message msg, const std::string& queue_name,
                           ReceivedMessage& out);

  void send_ack(const AckRecord& ack, const std::string& sender_qmgr,
                const std::string& ack_queue);
  void log_consumption(const ReceiverLogEntry& entry);
  bool rlog_contains(const std::string& original_msg_id) const;
  // Annihilation helper: removes the original message (by id) from the
  // local queue, honouring the ongoing transaction if any.
  bool remove_original(const std::string& queue_name,
                       const std::string& original_msg_id);

  mq::QueueManager& qm_;
  const std::string recipient_id_;
  std::unique_ptr<mq::Session> session_;
  std::string current_queue_;  // queue of the in-progress read loop

  mutable std::mutex mu_;
  ReceiverStats stats_;
};

}  // namespace cmx::cm
