// Fluent construction helpers for condition trees. Purely convenience on
// top of the Destination/DestinationSet factories; examples and tests use
// these to express conditions close to the paper's notation, e.g. the
// paper's Example 1 (Figure 4):
//
//   auto root = SetBuilder()
//       .pick_up_within(2 * kDay)
//       .add(DestBuilder({"qmB", "Q.R3"}, "receiver3")
//                .processing_within(kWeek).build())
//       .add(SetBuilder()
//                .processing_within(3 * kDay)
//                .min_nr_processing(2)
//                .add(DestBuilder({"qmB", "Q.R1"}, "receiver1").build())
//                .add(DestBuilder({"qmB", "Q.R2"}, "receiver2").build())
//                .add(DestBuilder({"qmB", "Q.R4"}, "receiver4").build())
//                .build())
//       .build();
#pragma once

#include <utility>

#include "cm/condition.hpp"

namespace cmx::cm {

class DestBuilder {
 public:
  explicit DestBuilder(mq::QueueAddress address, std::string recipient = "")
      : dest_(Destination::make(std::move(address), std::move(recipient))) {}

  DestBuilder& pick_up_within(util::TimeMs relative_ms) {
    dest_->set_msg_pick_up_time(relative_ms);
    return *this;
  }
  DestBuilder& processing_within(util::TimeMs relative_ms) {
    dest_->set_msg_processing_time(relative_ms);
    return *this;
  }
  DestBuilder& expiry(util::TimeMs relative_ms) {
    dest_->set_msg_expiry(relative_ms);
    return *this;
  }
  DestBuilder& priority(int priority) {
    dest_->set_msg_priority(priority);
    return *this;
  }
  DestBuilder& persistence(mq::Persistence p) {
    dest_->set_msg_persistence(p);
    return *this;
  }

  std::shared_ptr<Destination> build() { return std::move(dest_); }

 private:
  std::shared_ptr<Destination> dest_;
};

class SetBuilder {
 public:
  SetBuilder() : set_(DestinationSet::make()) {}

  SetBuilder& add(ConditionPtr child) {
    set_->add(std::move(child));
    return *this;
  }
  SetBuilder& pick_up_within(util::TimeMs relative_ms) {
    set_->set_msg_pick_up_time(relative_ms);
    return *this;
  }
  SetBuilder& processing_within(util::TimeMs relative_ms) {
    set_->set_msg_processing_time(relative_ms);
    return *this;
  }
  SetBuilder& min_nr_pick_up(int n) {
    set_->set_min_nr_pick_up(n);
    return *this;
  }
  SetBuilder& max_nr_pick_up(int n) {
    set_->set_max_nr_pick_up(n);
    return *this;
  }
  SetBuilder& min_nr_processing(int n) {
    set_->set_min_nr_processing(n);
    return *this;
  }
  SetBuilder& max_nr_processing(int n) {
    set_->set_max_nr_processing(n);
    return *this;
  }
  SetBuilder& min_nr_anonymous(int n) {
    set_->set_min_nr_anonymous(n);
    return *this;
  }
  SetBuilder& max_nr_anonymous(int n) {
    set_->set_max_nr_anonymous(n);
    return *this;
  }
  SetBuilder& expiry(util::TimeMs relative_ms) {
    set_->set_msg_expiry(relative_ms);
    return *this;
  }
  SetBuilder& priority(int priority) {
    set_->set_msg_priority(priority);
    return *this;
  }
  SetBuilder& persistence(mq::Persistence p) {
    set_->set_msg_persistence(p);
    return *this;
  }

  std::shared_ptr<DestinationSet> build() { return std::move(set_); }

 private:
  std::shared_ptr<DestinationSet> set_;
};

// Common time units for readable condition definitions.
inline constexpr util::TimeMs kSecond = 1000;
inline constexpr util::TimeMs kMinute = 60 * kSecond;
inline constexpr util::TimeMs kHour = 60 * kMinute;
inline constexpr util::TimeMs kDay = 24 * kHour;
inline constexpr util::TimeMs kWeek = 7 * kDay;

}  // namespace cmx::cm
