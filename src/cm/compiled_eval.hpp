// Compiled condition evaluation (DESIGN.md §12): a one-time compilation of
// the condition tree into a flat node array with incremental residual
// counts, so each acknowledgment updates only the O(depth) path it
// affects instead of re-walking the whole tree per evaluation.
//
// Compilation output:
//   * One CNode per condition node, in pre-order, carrying a `remaining`
//     residual count = unsatisfied own parts + unsatisfied children. When
//     it hits zero the node is satisfied and decrements its parent —
//     satisfaction propagates in amortized O(1) per part.
//   * One Part per time condition: a leaf deadline (needed = 1), a set
//     subset cardinality (needed = MinNr* or the subtree leaf count), or
//     an anonymous-count window. Parts count matching events; a part with
//     a MaxNr* bound latches a violation the moment its count exceeds it
//     (counts are monotone, so max violations can never be undone).
//   * Per-leaf routes: the list of parts (own + ancestor sets) a leaf's
//     read/processing timestamps feed, with per-pair counted flags. An
//     ack touches exactly one leaf's route — O(depth) part bumps.
//   * A sorted deadline-event list with a cursor: status(now) advances the
//     cursor, marking parts still unsatisfied at deadline+1 as missed.
//     A missed part is NOT latched: a late-arriving ack with an early
//     timestamp un-misses it (mirroring the interpretive walker, which
//     recomputes from timestamps — this matters under the
//     early-failure-detection ablation where violations are held open).
//
// The verdict at any `now` is bit-for-bit the interpretive walker's state:
// max-violated || any part missed => violated; root residual 0 =>
// satisfied; else pending. EvalState keeps both engines behind
// set_compiled_eval_enabled() / EvalStateOptions::engine for A/B runs.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "cm/condition.hpp"
#include "cm/control.hpp"
#include "util/clock.hpp"

namespace cmx::cm {

enum class TriState { kPending, kSatisfied, kViolated };

const char* tri_state_name(TriState s);

// Process-wide default engine toggle (A/B switch, like
// mq::set_selector_index_enabled). Read once per EvalState at
// construction; in-flight evaluations keep the engine they started with.
bool compiled_eval_enabled();
void set_compiled_eval_enabled(bool enabled);

class CompiledEval {
 public:
  // `root` must outlive this object (EvalState owns the cloned tree).
  // `leaves` is the tree's leaf list in left-to-right order; leaf indices
  // passed to the hooks below refer to positions in this vector.
  CompiledEval(const Condition* root, util::TimeMs send_ts,
               const std::vector<const Destination*>& leaves);

  // ---- incremental update hooks (called from EvalState::add_ack) --------
  // `min_read_ts` / `min_processing_ts` are the leaf's NEW minimum
  // timestamps; call only when the minimum improved (first ack or an
  // earlier timestamp). Counted-ness is monotone: once a leaf's minimum
  // fits a part's window it stays counted.
  void on_read(std::size_t leaf_idx, util::TimeMs min_read_ts);
  void on_processing(std::size_t leaf_idx, util::TimeMs min_processing_ts);
  // Ack that matched no leaf: feeds anonymous-count windows.
  void on_unassigned(const AckRecord& ack);

  struct Status {
    TriState state = TriState::kPending;
    std::string reason;  // set when violated
  };

  // Advances the deadline cursor to `now` and reports the root verdict.
  // Decision latching (monotonicity) is EvalState's job, not ours: under
  // the ablation a held-back violation may legitimately revert.
  Status status(util::TimeMs now);

  // ---- introspection (dump_evaluation, tests) ---------------------------
  // Per-node residual counts and part progress, one line per node.
  void describe(std::ostream& os) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t part_count() const { return parts_.size(); }

 private:
  struct Part {
    enum class Kind : std::uint8_t { kPickUp, kProcessing, kAnon };
    Kind kind = Kind::kPickUp;
    bool satisfied = false;
    bool missed = false;  // deadline passed while unsatisfied (reversible)
    std::uint32_t node = 0;
    int count = 0;
    int needed = 0;
    int max_count = -1;  // -1: no MaxNr* bound
    util::TimeMs deadline = 0;  // absolute (send_ts + relative)
    util::TimeMs rel_time = 0;  // relative, for reason strings
  };

  struct CNode {
    const Condition* cond = nullptr;
    std::int32_t parent = -1;
    std::uint32_t parts_begin = 0;
    std::uint32_t parts_end = 0;
    std::uint32_t remaining = 0;  // unsatisfied own parts + children
    bool satisfied = false;
  };

  // Anonymous-count window of one set: scope (subtree queues, named
  // recipients) plus the distinct named strangers seen so far.
  struct AnonScope {
    std::uint32_t part = 0;
    std::set<mq::QueueAddress> queues;
    std::set<std::string> named;
    std::set<std::string> strangers;
  };

  // The parts a leaf's timestamps feed, with parallel counted flags.
  struct LeafRoute {
    std::vector<std::uint32_t> pickup;
    std::vector<std::uint32_t> processing;
    std::vector<std::uint8_t> pickup_counted;
    std::vector<std::uint8_t> processing_counted;
  };

  std::uint32_t make_part(Part::Kind kind, std::uint32_t node, int needed,
                          int max_count, util::TimeMs rel_time);
  void build(const Condition* node, std::int32_t parent,
             std::vector<std::uint32_t>& pickup_stack,
             std::vector<std::uint32_t>& processing_stack,
             const std::vector<const Destination*>& leaves);
  void bump(std::uint32_t part_idx);
  void satisfy(std::uint32_t part_idx);
  std::string part_reason(const Part& p) const;
  std::string max_reason(const Part& p) const;

  const util::TimeMs send_ts_;
  std::vector<CNode> nodes_;   // pre-order; nodes_[0] is the root
  std::vector<Part> parts_;
  std::vector<LeafRoute> routes_;  // by leaf index
  std::vector<AnonScope> anon_scopes_;
  // (deadline + 1, part) events, sorted; cursor_ marks processed prefix.
  std::vector<std::pair<util::TimeMs, std::uint32_t>> events_;
  std::size_t cursor_ = 0;
  int missed_count_ = 0;
  bool max_violated_ = false;
  std::string max_violated_reason_;
  // Cached reason of the first missed part; rebuilt when that part
  // un-misses (keeps repeated status() calls on a held-back violation
  // from rescanning parts_ every time).
  std::uint32_t missed_reason_part_ = UINT32_MAX;
  std::string missed_reason_;
};

}  // namespace cmx::cm
