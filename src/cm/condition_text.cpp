#include "cm/condition_text.hpp"

#include <cctype>
#include <sstream>
#include <vector>

#include "cm/condition_builder.hpp"

namespace cmx::cm {

namespace {

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

struct Token {
  enum class Kind { kEnd, kLParen, kRParen, kKeyword, kString, kAtom } kind =
      Kind::kEnd;
  std::string text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { advance(); }

  const Token& current() const { return cur_; }

  void advance() {
    skip_ws();
    cur_ = Token{};
    cur_.pos = pos_;
    if (pos_ >= input_.size()) return;
    const char c = input_[pos_];
    if (c == '(') {
      cur_.kind = Token::Kind::kLParen;
      ++pos_;
      return;
    }
    if (c == ')') {
      cur_.kind = Token::Kind::kRParen;
      ++pos_;
      return;
    }
    if (c == '"') {
      ++pos_;
      std::string out;
      while (pos_ < input_.size() && input_[pos_] != '"') {
        if (input_[pos_] == '\\' && pos_ + 1 < input_.size()) ++pos_;
        out += input_[pos_++];
      }
      if (pos_ < input_.size()) ++pos_;  // closing quote
      cur_.kind = Token::Kind::kString;
      cur_.text = std::move(out);
      return;
    }
    if (c == ':') {
      ++pos_;
      cur_.kind = Token::Kind::kKeyword;
      cur_.text = take_atom();
      return;
    }
    cur_.kind = Token::Kind::kAtom;
    cur_.text = take_atom();
  }

 private:
  std::string take_atom() {
    std::string out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
          c == ')' || c == '"') {
        break;
      }
      out += c;
      ++pos_;
    }
    return out;
  }

  void skip_ws() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == ';') {  // comment to end of line
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) break;
      ++pos_;
    }
  }

  const std::string& input_;
  std::size_t pos_ = 0;
  Token cur_;
};

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

util::Status error_at(const Token& token, const std::string& what) {
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "condition text: " + what + " at position " +
                              std::to_string(token.pos));
}

util::Result<util::TimeMs> parse_duration(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == 0) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "expected duration, got '" + text + "'");
  }
  const util::TimeMs value = std::stoll(text.substr(0, i));
  const std::string unit = text.substr(i);
  if (unit.empty() || unit == "ms") return value;
  if (unit == "s") return value * kSecond;
  if (unit == "m") return value * kMinute;
  if (unit == "h") return value * kHour;
  if (unit == "d") return value * kDay;
  if (unit == "w") return value * kWeek;
  return util::make_error(util::ErrorCode::kInvalidArgument,
                          "unknown duration unit '" + unit + "'");
}

class Parser {
 public:
  explicit Parser(const std::string& input) : lex_(input) {}

  util::Result<ConditionPtr> parse() {
    auto node = parse_condition();
    if (!node) return node;
    if (lex_.current().kind != Token::Kind::kEnd) {
      return error_at(lex_.current(), "unexpected trailing input");
    }
    return node;
  }

 private:
  util::Result<ConditionPtr> parse_condition() {
    if (lex_.current().kind != Token::Kind::kLParen) {
      return error_at(lex_.current(), "expected '('");
    }
    lex_.advance();
    if (lex_.current().kind != Token::Kind::kAtom) {
      return error_at(lex_.current(), "expected 'dest' or 'set'");
    }
    const std::string head = lex_.current().text;
    lex_.advance();
    if (head == "dest") return parse_dest();
    if (head == "set") return parse_set();
    return error_at(lex_.current(), "unknown form '" + head + "'");
  }

  util::Result<ConditionPtr> parse_dest() {
    const auto& addr_token = lex_.current();
    if (addr_token.kind != Token::Kind::kString &&
        addr_token.kind != Token::Kind::kAtom) {
      return error_at(addr_token, "expected destination address");
    }
    auto dest = Destination::make(mq::QueueAddress::parse(addr_token.text));
    lex_.advance();
    while (lex_.current().kind == Token::Kind::kKeyword) {
      const std::string key = lex_.current().text;
      lex_.advance();
      const auto& value = lex_.current();
      if (value.kind != Token::Kind::kAtom &&
          value.kind != Token::Kind::kString) {
        return error_at(value, "expected value for :" + key);
      }
      if (key == "recipient") {
        dest->set_recipient_id(value.text);
      } else if (auto s = apply_common(*dest, key, value.text); !s) {
        return s;
      }
      lex_.advance();
    }
    if (lex_.current().kind != Token::Kind::kRParen) {
      return error_at(lex_.current(), "expected ')'");
    }
    lex_.advance();
    return ConditionPtr(std::move(dest));
  }

  util::Result<ConditionPtr> parse_set() {
    auto set = DestinationSet::make();
    while (lex_.current().kind == Token::Kind::kKeyword) {
      const std::string key = lex_.current().text;
      lex_.advance();
      const auto& value = lex_.current();
      if (value.kind != Token::Kind::kAtom &&
          value.kind != Token::Kind::kString) {
        return error_at(value, "expected value for :" + key);
      }
      if (auto s = apply_set(*set, key, value.text); !s) return s;
      lex_.advance();
    }
    while (lex_.current().kind == Token::Kind::kLParen) {
      auto child = parse_condition();
      if (!child) return child;
      set->add(std::move(child).value());
    }
    if (lex_.current().kind != Token::Kind::kRParen) {
      return error_at(lex_.current(), "expected ')' or child condition");
    }
    lex_.advance();
    return ConditionPtr(std::move(set));
  }

  // Attributes shared by both node kinds.
  util::Status apply_common(Condition& node, const std::string& key,
                            const std::string& value) {
    if (key == "pickUp") {
      auto d = parse_duration(value);
      if (!d) return d.status();
      node.set_msg_pick_up_time(d.value());
      return util::ok_status();
    }
    if (key == "processing") {
      auto d = parse_duration(value);
      if (!d) return d.status();
      node.set_msg_processing_time(d.value());
      return util::ok_status();
    }
    if (key == "expiry") {
      auto d = parse_duration(value);
      if (!d) return d.status();
      node.set_msg_expiry(d.value());
      return util::ok_status();
    }
    if (key == "priority") {
      node.set_msg_priority(std::stoi(value));
      return util::ok_status();
    }
    if (key == "persistent") {
      node.set_msg_persistence(value == "true"
                                   ? mq::Persistence::kPersistent
                                   : mq::Persistence::kNonPersistent);
      return util::ok_status();
    }
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "unknown attribute :" + key);
  }

  util::Status apply_set(DestinationSet& set, const std::string& key,
                         const std::string& value) {
    const auto as_int = [&]() { return std::stoi(value); };
    if (key == "minPickUp") {
      set.set_min_nr_pick_up(as_int());
    } else if (key == "maxPickUp") {
      set.set_max_nr_pick_up(as_int());
    } else if (key == "minProcessing") {
      set.set_min_nr_processing(as_int());
    } else if (key == "maxProcessing") {
      set.set_max_nr_processing(as_int());
    } else if (key == "minAnonymous") {
      set.set_min_nr_anonymous(as_int());
    } else if (key == "maxAnonymous") {
      set.set_max_nr_anonymous(as_int());
    } else {
      return apply_common(set, key, value);
    }
    return util::ok_status();
  }

  Lexer lex_;
};

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

std::string duration_to_text(util::TimeMs ms) {
  struct Unit {
    util::TimeMs scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {kWeek, "w"}, {kDay, "d"}, {kHour, "h"},
      {kMinute, "m"}, {kSecond, "s"},
  };
  for (const auto& unit : kUnits) {
    if (ms != 0 && ms % unit.scale == 0) {
      return std::to_string(ms / unit.scale) + unit.suffix;
    }
  }
  return std::to_string(ms) + "ms";
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void print_common(const Condition& node, std::ostringstream& out) {
  if (auto t = node.msg_pick_up_time()) {
    out << " :pickUp " << duration_to_text(*t);
  }
  if (auto t = node.msg_processing_time()) {
    out << " :processing " << duration_to_text(*t);
  }
  if (auto t = node.msg_expiry()) {
    out << " :expiry " << duration_to_text(*t);
  }
  if (auto p = node.msg_priority()) {
    out << " :priority " << *p;
  }
  if (auto p = node.msg_persistence()) {
    out << " :persistent "
        << (*p == mq::Persistence::kPersistent ? "true" : "false");
  }
}

void print_node(const Condition& node, std::ostringstream& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (const auto* dest = node.as_destination()) {
    out << pad << "(dest " << quote(dest->address().to_string());
    if (!dest->recipient_id().empty()) {
      out << " :recipient " << quote(dest->recipient_id());
    }
    print_common(node, out);
    out << ")";
    return;
  }
  const auto* set = node.as_destination_set();
  out << pad << "(set";
  print_common(node, out);
  if (auto v = set->min_nr_pick_up()) out << " :minPickUp " << *v;
  if (auto v = set->max_nr_pick_up()) out << " :maxPickUp " << *v;
  if (auto v = set->min_nr_processing()) out << " :minProcessing " << *v;
  if (auto v = set->max_nr_processing()) out << " :maxProcessing " << *v;
  if (auto v = set->min_nr_anonymous()) out << " :minAnonymous " << *v;
  if (auto v = set->max_nr_anonymous()) out << " :maxAnonymous " << *v;
  for (const auto& child : set->children()) {
    out << "\n";
    print_node(*child, out, indent + 1);
  }
  out << ")";
}

}  // namespace

util::Result<ConditionPtr> parse_condition_text(const std::string& text) {
  Parser parser(text);
  return parser.parse();
}

std::string condition_to_text(const Condition& condition) {
  std::ostringstream out;
  print_node(condition, out, 0);
  return out.str();
}

}  // namespace cmx::cm
