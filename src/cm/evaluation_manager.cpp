#include "cm/evaluation_manager.hpp"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/lifecycle.hpp"
#include "util/logging.hpp"

namespace cmx::cm {

namespace {

EvaluationOptions normalize(EvaluationOptions options) {
  options.shard_count = std::max<std::size_t>(1, options.shard_count);
  options.max_batch = std::max<std::size_t>(1, options.max_batch);
  options.decision_retention =
      std::max<std::size_t>(1, options.decision_retention);
  return options;
}

}  // namespace

EvaluationManager::EvaluationManager(mq::QueueManager& qm,
                                     OutcomeAction on_outcome,
                                     EvaluationOptions options)
    : qm_(qm),
      on_outcome_(std::move(on_outcome)),
      options_(normalize(options)),
      per_shard_retention_(std::max<std::size_t>(
          1, options_.decision_retention / options_.shard_count)) {
  qm_.ensure_queue(kAckQueue, mq::QueueOptions{.max_depth = SIZE_MAX,
                                               .system = true})
      .expect_ok("ensure DS.ACK.Q");
  shards_.reserve(options_.shard_count);
  for (std::size_t i = 0; i < options_.shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { shard_loop(*s); });
  }
  router_ = std::thread([this] { router_loop(); });
  if (auto queue = qm_.find_queue(kAckQueue)) {
    queue->set_put_listener([this] {
      {
        std::lock_guard<std::mutex> lk(router_mu_);
        router_wake_ = true;
      }
      router_cv_.notify_one();
    });
  }
}

EvaluationManager::~EvaluationManager() { stop(); }

void EvaluationManager::stop() {
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    if (stopped_) return;  // repeated stop() is a no-op
    stopped_ = true;
  }
  {
    std::lock_guard<std::mutex> lk(router_mu_);
    router_stopping_ = true;
  }
  router_cv_.notify_all();
  if (router_.joinable()) router_.join();
  if (auto queue = qm_.find_queue(kAckQueue)) {
    queue->set_put_listener({});
  }
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lk(shard->mu);
      shard->stopping = true;
      shard->wake = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::size_t EvaluationManager::shard_of(const std::string& cm_id) const {
  return std::hash<std::string>{}(cm_id) % shards_.size();
}

EvaluationManager::Shard& EvaluationManager::shard_for(
    const std::string& cm_id) const {
  return *shards_[shard_of(cm_id)];
}

void EvaluationManager::register_message(std::unique_ptr<EvalState> state,
                                         bool deferred) {
  // Read the id before the move: the assignment's right side is
  // sequenced before the subscript expression.
  const std::string cm_id = state->cm_id();
  Shard& shard = shard_for(cm_id);
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    Entry entry;
    entry.state = std::move(state);
    entry.deferred = deferred;
    entry.dirty = true;  // evaluated on the next pass (may already hold)
    shard.states[cm_id] = std::move(entry);
    shard.dirty.push_back(cm_id);
    shard.wake = true;
  }
  shard.cv.notify_all();
}

util::Status EvaluationManager::force_decision(const std::string& cm_id,
                                               Outcome outcome,
                                               const std::string& reason) {
  Shard& shard = shard_for(cm_id);
  std::unique_lock<std::mutex> lk(shard.mu);
  auto it = shard.states.find(cm_id);
  if (it == shard.states.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            cm_id + " is not in flight");
  }
  Entry entry = std::move(it->second);
  shard.states.erase(it);
  const EvalState::Verdict verdict{outcome == Outcome::kSuccess
                                       ? TriState::kSatisfied
                                       : TriState::kViolated,
                                   reason};
  finalize_locked(shard, lk, cm_id, std::move(entry), verdict);
  return util::ok_status();
}

bool EvaluationManager::is_in_flight(const std::string& cm_id) const {
  Shard& shard = shard_for(cm_id);
  std::lock_guard<std::mutex> lk(shard.mu);
  return shard.states.count(cm_id) > 0;
}

std::size_t EvaluationManager::in_flight() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    total += shard->states.size();
  }
  return total;
}

EvaluationStats EvaluationManager::stats() const {
  EvaluationStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    total.acks_processed += shard->stats.acks_processed;
    total.acks_orphaned += shard->stats.acks_orphaned;
    total.decided_success += shard->stats.decided_success;
    total.decided_failure += shard->stats.decided_failure;
    total.decisions_evicted += shard->stats.decisions_evicted;
  }
  total.acks_malformed = acks_malformed_.load(std::memory_order_relaxed);
  total.ack_batches = ack_batches_.load(std::memory_order_relaxed);
  return total;
}

std::vector<EvalShardInfo> EvaluationManager::shard_info() const {
  std::vector<EvalShardInfo> info;
  info.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    EvalShardInfo s;
    s.in_flight = shard->states.size();
    s.dirty = shard->dirty.size();
    s.heap = shard->heap.size();
    s.decisions = shard->decisions.size();
    info.push_back(s);
  }
  return info;
}

void EvaluationManager::dump_states(std::ostream& out,
                                    std::size_t per_shard_limit) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    std::size_t shown = 0;
    for (const auto& [cm_id, entry] : shard->states) {
      if (shown == per_shard_limit) {
        out << "  ... (" << (shard->states.size() - shown)
            << " more in shard " << shard->index << ")\n";
        break;
      }
      ++shown;
      entry.state->dump(out);
    }
  }
}

bool EvaluationManager::await_decided(const std::string& cm_id,
                                      util::TimeMs real_cap_ms) const {
  Shard& shard = shard_for(cm_id);
  std::unique_lock<std::mutex> lk(shard.mu);
  return shard.cv.wait_for(lk, std::chrono::milliseconds(real_cap_ms), [&] {
    return shard.decisions.count(cm_id) > 0;
  });
}

void EvaluationManager::router_loop() {
  std::unique_lock<std::mutex> lk(router_mu_);
  while (!router_stopping_) {
    router_cv_.wait(lk, [&] { return router_wake_ || router_stopping_; });
    if (router_stopping_) break;
    router_wake_ = false;
    lk.unlock();
    drain_acks();
    lk.lock();
  }
}

void EvaluationManager::drain_acks() {
  const std::size_t shard_count = shards_.size();
  std::vector<std::vector<AckRecord>> by_shard(shard_count);
  while (true) {
    auto batch = qm_.get_batch(kAckQueue, options_.max_batch);
    if (batch.empty()) break;
    ack_batches_.fetch_add(1, std::memory_order_relaxed);
    CMX_OBS_RECORD("cm.eval.batch_acks", batch.size());
    // Decode and partition outside any shard lock; a malformed message is
    // dropped without poisoning the rest of its batch.
    for (auto& slice : by_shard) slice.clear();
    for (auto& msg : batch) {
      auto ack = AckRecord::from_message(msg);
      if (!ack) {
        CMX_WARN("cm.eval") << "malformed ack dropped: "
                            << ack.status().to_string();
        acks_malformed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      by_shard[shard_of(ack.value().cm_id)].push_back(
          std::move(ack).value());
    }
    for (std::size_t i = 0; i < shard_count; ++i) {
      if (!by_shard[i].empty()) apply_acks(*shards_[i], by_shard[i]);
    }
    // A short batch means the queue ran dry; a put racing this check
    // re-raises router_wake_ through the put listener.
    if (batch.size() < options_.max_batch) break;
  }
}

void EvaluationManager::apply_acks(Shard& shard,
                                   std::vector<AckRecord>& acks) {
  bool any = false;
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (const AckRecord& ack : acks) {
      auto it = shard.states.find(ack.cm_id);
      if (it == shard.states.end()) {
        ++shard.stats.acks_orphaned;
        continue;
      }
      it->second.state->add_ack(ack);
      ++shard.stats.acks_processed;
      if (!it->second.dirty) {
        it->second.dirty = true;
        shard.dirty.push_back(ack.cm_id);
      }
      any = true;
      if (obs::enabled()) {
        // Ack propagation: recipient's read/commit instant -> the ack is
        // applied to the evaluation state here, on the shared clock.
        const util::TimeMs ref =
            ack.type == AckType::kProcessing ? ack.commit_ts : ack.read_ts;
        obs::trace_stage(obs::Stage::kProcessingAck,
                         obs::ms_delta_us(qm_.clock().now_ms() - ref));
      }
    }
    if (any) shard.wake = true;
  }
  if (any) shard.cv.notify_all();
}

void EvaluationManager::push_deadline_locked(Shard& shard, Entry& entry,
                                             const std::string& cm_id,
                                             util::TimeMs deadline) {
  if (deadline == util::kNoDeadline) return;
  // The live heap item is the one with entry.heap_gen; pushing a fresh
  // generation lazily invalidates any older (always later-deadline) item.
  if (deadline >= entry.heap_deadline) return;
  entry.heap_deadline = deadline;
  ++entry.heap_gen;
  shard.heap.push(HeapItem{deadline, entry.heap_gen, cm_id});
}

void EvaluationManager::record_decision_locked(Shard& shard,
                                               const std::string& cm_id,
                                               Outcome outcome) {
  shard.decisions[cm_id] = outcome;
  shard.decision_fifo.push_back(cm_id);
  while (shard.decision_fifo.size() > per_shard_retention_) {
    const std::string& victim = shard.decision_fifo.front();
    if (shard.decisions.erase(victim) > 0) {
      ++shard.stats.decisions_evicted;
    }
    shard.decision_fifo.pop_front();
  }
}

void EvaluationManager::finalize_locked(Shard& shard,
                                        std::unique_lock<std::mutex>& lk,
                                        const std::string& cm_id, Entry entry,
                                        const EvalState::Verdict& verdict) {
  OutcomeRecord record;
  record.cm_id = cm_id;
  record.outcome = verdict.state == TriState::kSatisfied ? Outcome::kSuccess
                                                         : Outcome::kFailure;
  record.reason = verdict.reason;
  record.decided_ts = qm_.clock().now_ms();
  record_decision_locked(shard, cm_id, record.outcome);
  if (record.outcome == Outcome::kSuccess) {
    ++shard.stats.decided_success;
  } else {
    ++shard.stats.decided_failure;
  }
  const bool deferred = entry.deferred;
  CMX_DEBUG("cm.eval") << cm_id << " decided " << outcome_name(record.outcome)
                       << (verdict.reason.empty() ? ""
                                                  : " (" + verdict.reason +
                                                        ")");
  // Run the action without holding the lock: it puts messages (outcome
  // notification, compensations) and may call back into this manager —
  // including force_decision on another message of this same shard.
  lk.unlock();
  if (on_outcome_) on_outcome_(record, deferred);
  lk.lock();
  shard.cv.notify_all();  // wake await_decided()
}

void EvaluationManager::shard_loop(Shard& shard) {
  std::unique_lock<std::mutex> lk(shard.mu);
  std::vector<std::string> candidates;
  while (!shard.stopping) {
    shard.wake = false;
    const util::TimeMs scan_time = qm_.clock().now_ms();
    const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;

    candidates.clear();
    if (options_.scan_engine) {
      // A/B baseline: evaluate every in-flight state on every wakeup.
      for (auto& [cm_id, entry] : shard.states) {
        entry.dirty = false;
        candidates.push_back(cm_id);
      }
      shard.dirty.clear();
    } else {
      candidates.swap(shard.dirty);
      for (const auto& cm_id : candidates) {
        auto it = shard.states.find(cm_id);
        if (it != shard.states.end()) it->second.dirty = false;
      }
      // Pop lapsed deadlines; stale items (older generation, or for a
      // state already decided and erased) are discarded on the way.
      while (!shard.heap.empty()) {
        const HeapItem& top = shard.heap.top();
        auto it = shard.states.find(top.cm_id);
        if (it == shard.states.end() || it->second.heap_gen != top.gen) {
          shard.heap.pop();
          continue;
        }
        if (top.deadline > scan_time) break;
        it->second.heap_deadline = util::kNoDeadline;  // item consumed
        candidates.push_back(top.cm_id);
        shard.heap.pop();
      }
    }

    // Evaluate only the candidates. finalize_locked() drops the lock for
    // the outcome action, so every id is re-looked-up — it may have been
    // force-decided (or re-registered) while the lock was released, and a
    // duplicate candidate (dirty + lapsed) is evaluated at most once more
    // (evaluate() is monotone, so the repeat is a cheap no-op).
    for (const auto& cm_id : candidates) {
      auto it = shard.states.find(cm_id);
      if (it == shard.states.end()) continue;
      const auto verdict = it->second.state->evaluate(scan_time);
      if (verdict.state != TriState::kPending) {
        Entry entry = std::move(it->second);
        shard.states.erase(it);
        finalize_locked(shard, lk, cm_id, std::move(entry), verdict);
        continue;
      }
      if (!options_.scan_engine) {
        push_deadline_locked(shard, it->second, cm_id,
                             it->second.state->next_deadline(scan_time));
      }
    }

    if (shard.stopping) break;

    // Next wakeup: the earliest live deadline. Judged against scan_time,
    // not a fresh now: any deadline that lapsed while the outcome actions
    // above ran makes the wait below expire immediately and re-run.
    util::TimeMs next = util::kNoDeadline;
    if (options_.scan_engine) {
      for (const auto& [cm_id, entry] : shard.states) {
        next = std::min(next, entry.state->next_deadline(scan_time));
      }
    } else {
      while (!shard.heap.empty()) {
        const HeapItem& top = shard.heap.top();
        auto it = shard.states.find(top.cm_id);
        if (it == shard.states.end() || it->second.heap_gen != top.gen) {
          shard.heap.pop();
          continue;
        }
        next = top.deadline;
        break;
      }
    }

    if (obs::enabled()) {
      // Only passes that evaluated something count as an evaluate stage;
      // idle wakeups (e.g. the first pass after construction) are noise.
      if (!candidates.empty()) {
        obs::trace_stage(obs::Stage::kEvaluate, obs::now_us() - t0);
      }
      if (shard.in_flight_gauge == nullptr) {
        auto& registry = obs::MetricsRegistry::instance();
        const std::string base =
            "cm.eval.shard" + std::to_string(shard.index);
        shard.in_flight_gauge = &registry.gauge(base + ".in_flight");
        shard.dirty_gauge = &registry.gauge(base + ".dirty");
      }
      shard.in_flight_gauge->set(
          static_cast<std::int64_t>(shard.states.size()));
      shard.dirty_gauge->set(static_cast<std::int64_t>(shard.dirty.size()));
    }

    qm_.clock().wait_until(lk, shard.cv, next,
                           [&] { return shard.wake || shard.stopping; });
  }
}

}  // namespace cmx::cm
