#include "cm/evaluation_manager.hpp"

#include <vector>

#include "obs/lifecycle.hpp"
#include "util/logging.hpp"

namespace cmx::cm {

EvaluationManager::EvaluationManager(mq::QueueManager& qm,
                                     OutcomeAction on_outcome)
    : qm_(qm), on_outcome_(std::move(on_outcome)) {
  qm_.ensure_queue(kAckQueue, mq::QueueOptions{.max_depth = SIZE_MAX,
                                               .system = true})
      .expect_ok("ensure DS.ACK.Q");
  if (auto queue = qm_.find_queue(kAckQueue)) {
    queue->set_put_listener([this] {
      {
        std::lock_guard<std::mutex> lk(mu_);
        wake_ = true;
      }
      cv_.notify_all();
    });
  }
  worker_ = std::thread([this] { loop(); });
}

EvaluationManager::~EvaluationManager() { stop(); }

void EvaluationManager::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      // fallthrough: still join if the thread is alive
    }
    stopping_ = true;
    wake_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  if (auto queue = qm_.find_queue(kAckQueue)) {
    queue->set_put_listener({});
  }
}

void EvaluationManager::register_message(std::unique_ptr<EvalState> state,
                                         bool deferred) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Read the id before the move: the assignment's right side is
    // sequenced before the subscript expression.
    const std::string cm_id = state->cm_id();
    states_[cm_id] = Entry{std::move(state), deferred};
    wake_ = true;
  }
  cv_.notify_all();
}

util::Status EvaluationManager::force_decision(const std::string& cm_id,
                                               Outcome outcome,
                                               const std::string& reason) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = states_.find(cm_id);
  if (it == states_.end()) {
    return util::make_error(util::ErrorCode::kNotFound,
                            cm_id + " is not in flight");
  }
  Entry entry = std::move(it->second);
  states_.erase(it);
  const EvalState::Verdict verdict{outcome == Outcome::kSuccess
                                       ? TriState::kSatisfied
                                       : TriState::kViolated,
                                   reason};
  finalize_locked(lk, cm_id, std::move(entry), verdict);
  return util::ok_status();
}

bool EvaluationManager::is_in_flight(const std::string& cm_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return states_.count(cm_id) > 0;
}

std::size_t EvaluationManager::in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return states_.size();
}

EvaluationStats EvaluationManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool EvaluationManager::await_decided(const std::string& cm_id,
                                      util::TimeMs real_cap_ms) const {
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, std::chrono::milliseconds(real_cap_ms), [&] {
    return decisions_.count(cm_id) > 0;
  });
}

std::size_t EvaluationManager::drain_acks_locked(
    std::unique_lock<std::mutex>& lk) {
  auto ack_queue = qm_.find_queue(kAckQueue);
  if (ack_queue == nullptr) return 0;
  std::size_t applied = 0;
  while (true) {
    std::optional<mq::Queue::GotMessage> got;
    {
      // try_get does its own locking; do not hold ours while calling into
      // the queue manager's durable-get path.
      lk.unlock();
      auto result = qm_.get(kAckQueue, 0);
      lk.lock();
      if (!result) break;
      got = mq::Queue::GotMessage{0, std::move(result).value()};
    }
    auto ack = AckRecord::from_message(got->msg);
    if (!ack) {
      CMX_WARN("cm.eval") << "malformed ack dropped: "
                          << ack.status().to_string();
      continue;
    }
    auto it = states_.find(ack.value().cm_id);
    if (it == states_.end()) {
      ++stats_.acks_orphaned;
      continue;
    }
    it->second.state->add_ack(ack.value());
    ++stats_.acks_processed;
    ++applied;
    if (obs::enabled()) {
      // Ack propagation: recipient's read/commit instant -> the ack is
      // applied to the evaluation state here, on the shared clock.
      const AckRecord& a = ack.value();
      const util::TimeMs ref =
          a.type == AckType::kProcessing ? a.commit_ts : a.read_ts;
      obs::trace_stage(obs::Stage::kProcessingAck,
                       obs::ms_delta_us(qm_.clock().now_ms() - ref));
    }
  }
  return applied;
}

void EvaluationManager::finalize_locked(std::unique_lock<std::mutex>& lk,
                                        const std::string& cm_id, Entry entry,
                                        const EvalState::Verdict& verdict) {
  OutcomeRecord record;
  record.cm_id = cm_id;
  record.outcome = verdict.state == TriState::kSatisfied ? Outcome::kSuccess
                                                         : Outcome::kFailure;
  record.reason = verdict.reason;
  record.decided_ts = qm_.clock().now_ms();
  decisions_[cm_id] = record.outcome;
  if (record.outcome == Outcome::kSuccess) {
    ++stats_.decided_success;
  } else {
    ++stats_.decided_failure;
  }
  const bool deferred = entry.deferred;
  CMX_DEBUG("cm.eval") << cm_id << " decided " << outcome_name(record.outcome)
                       << (verdict.reason.empty() ? ""
                                                  : " (" + verdict.reason +
                                                        ")");
  // Run the action without holding the lock: it puts messages (outcome
  // notification, compensations) and may call back into this manager.
  lk.unlock();
  if (on_outcome_) on_outcome_(record, deferred);
  lk.lock();
  cv_.notify_all();  // wake await_decided()
}

void EvaluationManager::evaluate_all_locked(std::unique_lock<std::mutex>& lk,
                                            util::TimeMs scan_time) {
  const util::TimeMs now = scan_time;
  std::vector<std::pair<std::string, EvalState::Verdict>> decided;
  for (auto& [cm_id, entry] : states_) {
    auto verdict = entry.state->evaluate(now);
    if (verdict.state != TriState::kPending) {
      decided.emplace_back(cm_id, verdict);
    }
  }
  for (auto& [cm_id, verdict] : decided) {
    auto it = states_.find(cm_id);
    if (it == states_.end()) continue;
    Entry entry = std::move(it->second);
    states_.erase(it);
    finalize_locked(lk, cm_id, std::move(entry), verdict);
  }
}

util::TimeMs EvaluationManager::earliest_deadline_locked(
    util::TimeMs scan_time) const {
  const util::TimeMs now = scan_time;
  util::TimeMs best = util::kNoDeadline;
  for (const auto& [cm_id, entry] : states_) {
    best = std::min(best, entry.state->next_deadline(now));
  }
  return best;
}

void EvaluationManager::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    wake_ = false;
    drain_acks_locked(lk);
    const util::TimeMs scan_time = qm_.clock().now_ms();
    evaluate_all_locked(lk, scan_time);
    if (stopping_) break;
    // Deadlines are judged against scan_time, not a fresh now: any
    // deadline that lapsed while the outcome actions above ran makes the
    // wait below expire immediately and re-scan.
    const util::TimeMs deadline = earliest_deadline_locked(scan_time);
    qm_.clock().wait_until(lk, cv_, deadline,
                           [&] { return wake_ || stopping_; });
  }
}

}  // namespace cmx::cm
