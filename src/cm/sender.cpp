#include "cm/sender.hpp"

#include <set>

#include "obs/lifecycle.hpp"
#include "util/id.hpp"
#include "util/logging.hpp"

namespace cmx::cm {

ConditionalMessagingService::ConditionalMessagingService(
    mq::QueueManager& qm, SenderOptions options)
    : qm_(qm), options_(options) {
  qm_.ensure_queue(kSenderLogQueue,
                   mq::QueueOptions{.max_depth = SIZE_MAX, .system = true})
      .expect_ok("ensure DS.SLOG.Q");
  qm_.ensure_queue(kOutcomeQueue,
                   mq::QueueOptions{.max_depth = SIZE_MAX, .system = true})
      .expect_ok("ensure DS.OUTCOME.Q");
  qm_.ensure_queue(kPendingActionQueue,
                   mq::QueueOptions{.max_depth = SIZE_MAX, .system = true})
      .expect_ok("ensure DS.PEND.Q");
  comp_ = std::make_unique<CompensationManager>(qm_);
  eval_ = std::make_unique<EvaluationManager>(
      qm_,
      [this](const OutcomeRecord& record, bool deferred) {
        on_outcome(record, deferred);
      },
      options_.evaluation);
}

ConditionalMessagingService::~ConditionalMessagingService() {
  eval_->stop();
}

util::Result<std::string> ConditionalMessagingService::send_message(
    const std::string& body, const Condition& condition,
    SendOptions options) {
  return send_internal(body, std::nullopt, condition, options);
}

util::Result<std::string> ConditionalMessagingService::send_message(
    const std::string& body, const std::string& compensation_body,
    const Condition& condition, SendOptions options) {
  return send_internal(body, compensation_body, condition, options);
}

util::Result<std::string> ConditionalMessagingService::send_internal(
    const std::string& body,
    const std::optional<std::string>& compensation_body,
    const Condition& condition, const SendOptions& options) {
  if (auto s = condition.validate(); !s) return s;
  const std::uint64_t obs_send_t0 = obs::enabled() ? obs::now_us() : 0;
  const util::TimeMs send_ts = qm_.clock().now_ms();
  const std::string cm_id = util::generate_id("cm");

  // --- plan the fan-out: one standard message per distinct queue ---------
  // (JMS has no distribution lists, §2.3). Recipients on a shared queue
  // are distinguished by acks, not by separate messages.
  const auto leaves = condition.leaves();
  // One shared payload for the whole fan-out: every leaf's message
  // references the same body allocation instead of copying it per leg.
  const mq::Payload shared_body(body);
  std::vector<mq::Message> outgoing;
  std::vector<std::pair<mq::QueueAddress, std::string>> deliveries;
  std::set<mq::QueueAddress> planned;
  for (const auto* leaf : leaves) {
    if (!planned.insert(leaf->address()).second) continue;
    bool processing_required = false;
    for (const auto* other : leaves) {
      if (other->address() == leaf->address() &&
          other->processing_required()) {
        processing_required = true;
        break;
      }
    }
    mq::Message msg(shared_body);
    msg.set_id(util::generate_id("msg"));
    for (const auto& [key, value] : options.properties) {
      msg.set_property(key, value);
    }
    msg.set_property(prop::kKind, std::string("data"));
    msg.set_property(prop::kCmId, cm_id);
    msg.set_property(prop::kProcessingRequired, processing_required);
    msg.set_property(prop::kSenderQmgr, qm_.name());
    msg.set_property(prop::kAckQueue, std::string(kAckQueue));
    msg.set_property(prop::kSendTs, send_ts);
    msg.set_property(prop::kDest, leaf->address().to_string());
    if (!leaf->recipient_id().empty()) {
      msg.set_property(prop::kRecipient, leaf->recipient_id());
    }
    // MOM pass-through properties: leaf-specific value, else the root's.
    const auto priority = leaf->msg_priority().has_value()
                              ? leaf->msg_priority()
                              : condition.msg_priority();
    if (priority.has_value()) msg.set_priority(*priority);
    const auto persistence = leaf->msg_persistence().has_value()
                                 ? leaf->msg_persistence()
                                 : condition.msg_persistence();
    msg.set_persistence(persistence.value_or(mq::Persistence::kPersistent));
    const auto expiry = leaf->msg_expiry().has_value()
                            ? leaf->msg_expiry()
                            : condition.msg_expiry();
    if (expiry.has_value()) msg.set_expiry_ms(send_ts + *expiry);
    deliveries.emplace_back(leaf->address(), msg.id());
    outgoing.push_back(std::move(msg));
  }

  // --- persistent intent: sender log entry (§2.3) -------------------------
  SenderLogEntry log_entry;
  log_entry.cm_id = cm_id;
  log_entry.send_ts = send_ts;
  log_entry.evaluation_timeout_ms = options.evaluation_timeout_ms;
  log_entry.condition = condition.clone();
  log_entry.has_compensation_data = compensation_body.has_value();
  log_entry.deliveries = deliveries;

  // --- stage compensation messages (§2.6) ---------------------------------
  const bool stage_now =
      options_.compensation_staging == CompensationStaging::kAtSendTime;
  std::vector<mq::Message> compensations;
  if (stage_now) {
    compensations = comp_->build_staged(cm_id, compensation_body, deliveries);
  }

  // --- register evaluation BEFORE sending so no ack can race it -----------
  {
    std::lock_guard<std::mutex> lk(mu_);
    Registration reg;
    reg.deliveries = deliveries;
    reg.success_notifications =
        options.success_notifications.value_or(options_.success_notifications);
    reg.deferred = options.defer_outcome_actions;
    if (!stage_now) {
      reg.stage_on_failure = true;
      reg.deferred_compensation_body = compensation_body;
    }
    registry_[cm_id] = std::move(reg);
  }
  eval_->register_message(
      std::make_unique<EvalState>(
          cm_id, condition, send_ts, options.evaluation_timeout_ms,
          EvalStateOptions{options.early_failure_detection}),
      options.defer_outcome_actions);

  // --- SLOG entry + staged compensations + fan-out: ONE atomic batch ------
  // A single put_all gives one store append (group-commit friendly) and
  // closes both crash windows of the sequential path: no state where
  // compensations are staged without their SLOG entry (the recovery orphan
  // sweep would spuriously release them), and none where the SLOG entry is
  // durable without its staged compensations (breaking guaranteed
  // compensation on failure). SLOG first, so replay records intent before
  // effects.
  std::vector<std::pair<mq::QueueAddress, mq::Message>> batch;
  batch.reserve(1 + compensations.size() + outgoing.size());
  batch.emplace_back(mq::QueueAddress("", kSenderLogQueue),
                     log_entry.to_message());
  const std::size_t comp_count = compensations.size();
  for (auto& comp : compensations) {
    batch.emplace_back(mq::QueueAddress("", kCompensationQueue),
                       std::move(comp));
  }
  for (std::size_t i = 0; i < outgoing.size(); ++i) {
    batch.emplace_back(deliveries[i].first, std::move(outgoing[i]));
  }
  {
    const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
    if (auto s = qm_.put_all(std::move(batch)); !s) {
      // Nothing (or, at worst, an in-memory fraction of the batch) went
      // out. Fail it through the normal outcome path so the application
      // hears a verdict and any delivered fraction is compensated.
      CMX_WARN("cm.send") << cm_id << " batched send failed: "
                          << s.to_string();
      eval_->force_decision(cm_id, Outcome::kFailure,
                            "send failed: " + s.to_string());
      return s;
    }
    if (obs::enabled()) {
      obs::trace_stage(obs::Stage::kSlogAppend, obs::now_us() - t0);
    }
  }
  comp_->note_staged(comp_count);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.conditional_messages;
    stats_.standard_messages += outgoing.size();
  }
  if (obs::enabled()) {
    obs::trace_stage(obs::Stage::kSend, obs::now_us() - obs_send_t0);
    CMX_OBS_COUNT("cm.fanout_messages", outgoing.size());
  }
  return cm_id;
}

void ConditionalMessagingService::on_outcome(const OutcomeRecord& record,
                                             bool deferred) {
  const std::uint64_t obs_t0 = obs::enabled() ? obs::now_us() : 0;
  OutcomeListener listener;
  Registration reg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    outcomes_[record.cm_id] = record.outcome;
    listener = listener_;
    auto it = registry_.find(record.cm_id);
    if (it != registry_.end()) reg = it->second;
  }

  // 1. Guaranteed actions: a persistent marker records the decided
  //    outcome BEFORE the sender log entry disappears, so a crash at any
  //    point from here on can re-drive the actions from DS.PEND.Q.
  if (!deferred) {
    PendingActionMarker marker;
    marker.cm_id = record.cm_id;
    marker.outcome = record.outcome;
    marker.reason = record.reason;
    marker.success_notifications = reg.success_notifications;
    marker.deliveries = reg.deliveries;
    qm_.put_local(kPendingActionQueue, marker.to_message())
        .expect_ok("pending-action marker");
  }

  // 2. The sender log entry is consumed: the message is no longer
  //    in flight, so recovery must not resurrect its evaluation.
  remove_slog_entry(record.cm_id).expect_ok("remove SLOG entry");

  // 3. Outcome actions — immediately, unless deferred to a D-Sphere.
  //    Run BEFORE the outcome notification so an application that reacts
  //    to the notification already observes the compensations / success
  //    notifications in flight.
  if (!deferred) {
    run_outcome_actions(record.cm_id, record.outcome, reg);
    remove_pending_marker(record.cm_id);
    std::lock_guard<std::mutex> lk(mu_);
    registry_.erase(record.cm_id);
  }

  // Recorded before the notification put: the put wakes await_outcome()
  // callers, so anything after it races with their snapshot reads.
  if (obs::enabled()) {
    obs::trace_stage(obs::Stage::kOutcomeDispatch, obs::now_us() - obs_t0);
    if (record.outcome == Outcome::kSuccess) {
      CMX_OBS_COUNT("cm.outcome.success", 1);
    } else {
      CMX_OBS_COUNT("cm.outcome.failure", 1);
    }
  }
  // 4. Outcome notification "sent to the sender's DS.OUTCOME.Q as soon as
  //    a condition evaluation process has completed" (§2.3).
  qm_.put_local(kOutcomeQueue, record.to_message())
      .expect_ok("outcome notification");
  if (listener) listener(record);
}

void ConditionalMessagingService::run_outcome_actions(
    const std::string& cm_id, Outcome outcome, const Registration& reg) {
  if (outcome == Outcome::kFailure) {
    if (reg.stage_on_failure) {
      // kOnFailure ablation: materialize the compensations only now.
      comp_->stage(cm_id, reg.deferred_compensation_body, reg.deliveries)
          .expect_ok("late compensation staging");
    }
    comp_->release(cm_id);
  } else {
    comp_->discard(cm_id);
    if (reg.success_notifications) {
      comp_->send_success_notifications(cm_id, reg.deliveries);
    }
  }
}

util::Status ConditionalMessagingService::remove_pending_marker(
    const std::string& cm_id) {
  auto selector =
      mq::Selector::parse(std::string(prop::kCmId) + " = '" + cm_id + "'");
  if (!selector) return selector.status();
  auto got = qm_.get(kPendingActionQueue, 0, &selector.value());
  if (!got && got.code() != util::ErrorCode::kTimeout) return got.status();
  return util::ok_status();
}

util::Status ConditionalMessagingService::remove_slog_entry(
    const std::string& cm_id) {
  auto selector =
      mq::Selector::parse(std::string(prop::kCmId) + " = '" + cm_id + "'");
  if (!selector) return selector.status();
  auto got = qm_.get(kSenderLogQueue, 0, &selector.value());
  if (!got && got.code() != util::ErrorCode::kTimeout) return got.status();
  return util::ok_status();
}

util::Result<OutcomeRecord> ConditionalMessagingService::next_outcome(
    util::TimeMs timeout_ms) {
  auto got = qm_.get(kOutcomeQueue, timeout_ms);
  if (!got) return got.status();
  return OutcomeRecord::from_message(got.value());
}

util::Result<OutcomeRecord> ConditionalMessagingService::await_outcome(
    const std::string& cm_id, util::TimeMs timeout_ms) {
  auto selector =
      mq::Selector::parse(std::string(prop::kCmId) + " = '" + cm_id + "'");
  if (!selector) return selector.status();
  auto got = qm_.get(kOutcomeQueue, timeout_ms, &selector.value());
  if (!got) return got.status();
  return OutcomeRecord::from_message(got.value());
}

std::optional<Outcome> ConditionalMessagingService::outcome_of(
    const std::string& cm_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = outcomes_.find(cm_id);
  if (it == outcomes_.end()) return std::nullopt;
  return it->second;
}

void ConditionalMessagingService::set_outcome_listener(
    OutcomeListener listener) {
  std::lock_guard<std::mutex> lk(mu_);
  listener_ = std::move(listener);
}

util::Status ConditionalMessagingService::release_deferred_actions(
    const std::string& cm_id, Outcome outcome) {
  Registration reg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = registry_.find(cm_id);
    if (it == registry_.end()) {
      return util::make_error(util::ErrorCode::kNotFound,
                              "no deferred actions for " + cm_id);
    }
    reg = it->second;
    registry_.erase(it);
  }
  // Same marker discipline as the immediate path: the sphere's decision
  // must not be lost between "resolved" and "actions done".
  PendingActionMarker marker;
  marker.cm_id = cm_id;
  marker.outcome = outcome;
  marker.success_notifications = reg.success_notifications;
  marker.deliveries = reg.deliveries;
  if (auto s = qm_.put_local(kPendingActionQueue, marker.to_message()); !s) {
    return s;
  }
  run_outcome_actions(cm_id, outcome, reg);
  return remove_pending_marker(cm_id);
}

util::Status ConditionalMessagingService::release_success_actions(
    const std::string& cm_id) {
  return release_deferred_actions(cm_id, Outcome::kSuccess);
}

util::Status ConditionalMessagingService::release_failure_actions(
    const std::string& cm_id) {
  return release_deferred_actions(cm_id, Outcome::kFailure);
}

util::Status ConditionalMessagingService::force_decision(
    const std::string& cm_id, Outcome outcome, const std::string& reason) {
  return eval_->force_decision(cm_id, outcome, reason);
}

util::Status ConditionalMessagingService::recover() {
  // Pass 1 — re-drive interrupted outcome actions (guaranteed
  // compensation): each marker on DS.PEND.Q is a decision whose actions
  // may not have completed. Re-running them is at-least-once: releasing
  // already-released compensations is a no-op (the staged messages are
  // gone), success notifications may duplicate.
  if (auto pend = qm_.find_queue(kPendingActionQueue)) {
    for (const auto& msg : pend->browse()) {
      auto marker = PendingActionMarker::from_message(msg);
      if (!marker) {
        CMX_WARN("cm.recover") << "bad pending-action marker: "
                               << marker.status().to_string();
        continue;
      }
      const auto& m = marker.value();
      CMX_INFO("cm.recover") << "re-driving outcome actions for " << m.cm_id;
      {
        std::lock_guard<std::mutex> lk(mu_);
        outcomes_[m.cm_id] = m.outcome;
      }
      Registration reg;
      reg.deliveries = m.deliveries;
      reg.success_notifications = m.success_notifications;
      run_outcome_actions(m.cm_id, m.outcome, reg);
      // The SLOG entry may still exist if the crash hit between marker
      // and log removal; consume it so pass 2 does not resurrect the
      // evaluation of an already-decided message.
      remove_slog_entry(m.cm_id).expect_ok("remove SLOG after re-drive");
      remove_pending_marker(m.cm_id);
      OutcomeRecord record;
      record.cm_id = m.cm_id;
      record.outcome = m.outcome;
      record.reason = m.reason;
      record.decided_ts = qm_.clock().now_ms();
      qm_.put_local(kOutcomeQueue, record.to_message())
          .expect_ok("outcome notification (recovery)");
    }
  }

  // Pass 2 — re-register evaluation for still-undecided messages.
  auto slog = qm_.find_queue(kSenderLogQueue);
  if (slog == nullptr) {
    return util::make_error(util::ErrorCode::kNotFound, "no DS.SLOG.Q");
  }
  std::size_t recovered = 0;
  for (const auto& msg : slog->browse()) {
    auto entry = SenderLogEntry::from_message(msg);
    if (!entry) {
      CMX_WARN("cm.recover") << "bad SLOG entry: "
                             << entry.status().to_string();
      continue;
    }
    auto& log_entry = entry.value();
    if (eval_->is_in_flight(log_entry.cm_id)) continue;
    if (log_entry.condition == nullptr) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (outcomes_.count(log_entry.cm_id) > 0) continue;
      Registration reg;
      reg.deliveries = log_entry.deliveries;
      reg.success_notifications = options_.success_notifications;
      registry_[log_entry.cm_id] = std::move(reg);
    }
    eval_->register_message(
        std::make_unique<EvalState>(log_entry.cm_id, *log_entry.condition,
                                    log_entry.send_ts,
                                    log_entry.evaluation_timeout_ms),
        /*deferred=*/false);
    ++recovered;
  }
  CMX_INFO("cm.recover") << "re-registered " << recovered
                         << " in-flight conditional messages";

  // Pass 3 — orphaned compensation sweep: staged compensations whose
  // conditional message is neither in flight (pass 2) nor decided (pass 1)
  // belong to Dependency-Sphere members whose sphere died with the sender.
  // A crashed sphere can never commit, so fail them: release the
  // compensations (§3.1's "if the D-Sphere fails as a whole").
  if (auto comp_queue = qm_.find_queue(kCompensationQueue)) {
    std::set<std::string> orphaned;
    for (const auto& msg : comp_queue->browse()) {
      const auto cm_id = msg.get_string(prop::kCmId).value_or("");
      if (cm_id.empty() || eval_->is_in_flight(cm_id)) continue;
      std::lock_guard<std::mutex> lk(mu_);
      if (outcomes_.count(cm_id) == 0) orphaned.insert(cm_id);
    }
    for (const auto& cm_id : orphaned) {
      CMX_INFO("cm.recover") << "failing orphaned sphere member " << cm_id;
      {
        std::lock_guard<std::mutex> lk(mu_);
        outcomes_[cm_id] = Outcome::kFailure;
      }
      comp_->release(cm_id);
      OutcomeRecord record;
      record.cm_id = cm_id;
      record.outcome = Outcome::kFailure;
      record.reason = "sender crashed while the D-Sphere was unresolved";
      record.decided_ts = qm_.clock().now_ms();
      qm_.put_local(kOutcomeQueue, record.to_message())
          .expect_ok("outcome notification (orphan sweep)");
    }
  }
  return util::ok_status();
}

SenderStats ConditionalMessagingService::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace cmx::cm
