#include "cm/eval_state.hpp"

#include <algorithm>
#include <set>

namespace cmx::cm {

namespace {

// Lookup key for ack assignment; '\x01' cannot occur in queue names.
std::string queue_key(const mq::QueueAddress& addr) {
  std::string key;
  key.reserve(addr.qmgr.size() + addr.queue.size() + 1);
  key += addr.qmgr;
  key += '\x01';
  key += addr.queue;
  return key;
}

}  // namespace

EvalState::EvalState(std::string cm_id, const Condition& condition,
                     util::TimeMs send_ts,
                     util::TimeMs evaluation_timeout_ms,
                     EvalStateOptions options)
    : cm_id_(std::move(cm_id)),
      send_ts_(send_ts),
      evaluation_timeout_ms_(evaluation_timeout_ms),
      options_(options),
      condition_(condition.clone()) {
  const auto leaves = condition_->leaves();
  for (const auto* leaf : leaves) {
    leaf_states_.push_back(LeafState{leaf, std::nullopt, std::nullopt});
  }
  for (std::size_t i = 0; i < leaf_states_.size(); ++i) {
    const auto* leaf = leaf_states_[i].leaf;
    const std::string qkey = queue_key(leaf->address());
    if (leaf->recipient_id().empty()) {
      anon_leaves_[qkey].push_back(i);
    } else {
      // emplace keeps the FIRST leaf per (queue, recipient), matching the
      // original first-match scan.
      exact_leaf_.emplace(qkey + '\x01' + leaf->recipient_id(), i);
    }
  }
  const bool use_compiled =
      options_.engine == EvalEngine::kCompiled ||
      (options_.engine == EvalEngine::kAuto && compiled_eval_enabled());
  if (use_compiled) {
    compiled_ =
        std::make_unique<CompiledEval>(condition_.get(), send_ts_, leaves);
  }
  std::vector<util::TimeMs> deadlines;
  collect_deadlines(condition_.get(), deadlines);
  for (const util::TimeMs d : deadlines) {
    max_deadline_ = std::max(max_deadline_, d);
    // A deadline resolves conditions the instant now > d, i.e. at d+1.
    wakeups_.push_back(d + 1);
  }
  if (evaluation_timeout_ms_ > 0) {
    wakeups_.push_back(send_ts_ + evaluation_timeout_ms_ + 1);
  }
  std::sort(wakeups_.begin(), wakeups_.end());
  wakeups_.erase(std::unique(wakeups_.begin(), wakeups_.end()),
                 wakeups_.end());
}

TriState EvalState::combine(TriState a, TriState b) {
  if (a == TriState::kViolated || b == TriState::kViolated) {
    return TriState::kViolated;
  }
  if (a == TriState::kPending || b == TriState::kPending) {
    return TriState::kPending;
  }
  return TriState::kSatisfied;
}

void EvalState::add_ack(const AckRecord& ack) {
  if (decided_.has_value()) return;
  ++acks_seen_;

  // Assignment: exact recipient match first, then an anonymous leaf on the
  // same queue. A processing ack also witnesses the read. The maps built
  // at construction make this O(1) in the leaf count (plus a scan of the
  // queue's anonymous leaves for the usefulness preference), which is what
  // keeps per-ack cost flat for wide trees.
  LeafState* chosen = nullptr;
  const std::string qkey = queue_key(ack.queue);
  if (!ack.recipient_id.empty()) {
    auto it = exact_leaf_.find(qkey + '\x01' + ack.recipient_id);
    if (it != exact_leaf_.end()) chosen = &leaf_states_[it->second];
  }
  if (chosen == nullptr) {
    // Prefer an anonymous leaf still missing the event this ack provides.
    auto it = anon_leaves_.find(qkey);
    if (it != anon_leaves_.end()) {
      const bool provides_processing = ack.type == AckType::kProcessing;
      std::size_t fallback = SIZE_MAX;
      for (std::size_t idx : it->second) {
        auto& ls = leaf_states_[idx];
        const bool useful = provides_processing
                                ? !ls.processing_ts.has_value()
                                : !ls.read_ts.has_value();
        if (useful) {
          chosen = &ls;
          break;
        }
        if (fallback == SIZE_MAX) fallback = idx;  // first anonymous
      }
      if (chosen == nullptr && fallback != SIZE_MAX) {
        chosen = &leaf_states_[fallback];
      }
    }
  }
  if (chosen != nullptr) {
    const auto prev_read = chosen->read_ts;
    const auto prev_processing = chosen->processing_ts;
    if (!chosen->read_ts.has_value() || ack.read_ts < *chosen->read_ts) {
      chosen->read_ts = ack.read_ts;
    }
    if (ack.type == AckType::kProcessing &&
        (!chosen->processing_ts.has_value() ||
         ack.commit_ts < *chosen->processing_ts)) {
      chosen->processing_ts = ack.commit_ts;
    }
    if (compiled_ != nullptr) {
      const auto leaf_idx =
          static_cast<std::size_t>(chosen - leaf_states_.data());
      if (chosen->read_ts != prev_read) {
        compiled_->on_read(leaf_idx, *chosen->read_ts);
      }
      if (chosen->processing_ts != prev_processing) {
        compiled_->on_processing(leaf_idx, *chosen->processing_ts);
      }
    }
  } else {
    unassigned_acks_.push_back(ack);
    if (compiled_ != nullptr) compiled_->on_unassigned(ack);
  }
}

const std::vector<std::size_t>& EvalState::subtree_leaves(
    const Condition* node) {
  auto it = subtree_cache_.find(node);
  if (it != subtree_cache_.end()) return it->second;
  std::vector<std::size_t> indices;
  const auto node_leaves = node->leaves();
  for (const auto* leaf : node_leaves) {
    for (std::size_t i = 0; i < leaf_states_.size(); ++i) {
      if (leaf_states_[i].leaf == leaf) {
        indices.push_back(i);
        break;
      }
    }
  }
  return subtree_cache_.emplace(node, std::move(indices)).first->second;
}

EvalState::NodeVerdict EvalState::eval_leaf(const LeafState& ls,
                                            util::TimeMs now) const {
  NodeVerdict verdict;
  verdict.state = TriState::kSatisfied;
  if (auto t = ls.leaf->msg_pick_up_time()) {
    const util::TimeMs deadline = send_ts_ + *t;
    const bool read_in_time =
        ls.read_ts.has_value() && *ls.read_ts <= deadline;
    if (read_in_time) {
      // satisfied part
    } else if (now > deadline) {
      return {TriState::kViolated,
              "pick-up deadline missed: " + ls.leaf->describe()};
    } else {
      verdict.state = TriState::kPending;
    }
  }
  if (auto t = ls.leaf->msg_processing_time()) {
    const util::TimeMs deadline = send_ts_ + *t;
    const bool processed_in_time =
        ls.processing_ts.has_value() && *ls.processing_ts <= deadline;
    if (processed_in_time) {
      // satisfied part
    } else if (now > deadline) {
      return {TriState::kViolated,
              "processing deadline missed: " + ls.leaf->describe()};
    } else {
      verdict.state = TriState::kPending;
    }
  }
  return verdict;
}

EvalState::NodeVerdict EvalState::eval_set(const DestinationSet* set,
                                           util::TimeMs now) {
  NodeVerdict verdict;
  verdict.state = TriState::kSatisfied;
  const auto& leaf_indices = subtree_leaves(set);

  // --- own pick-up condition over subtree leaves -------------------------
  if (auto t = set->msg_pick_up_time()) {
    const util::TimeMs deadline = send_ts_ + *t;
    int count = 0;
    for (std::size_t idx : leaf_indices) {
      const auto& ls = leaf_states_[idx];
      if (ls.read_ts.has_value() && *ls.read_ts <= deadline) ++count;
    }
    const bool window_closed = now > deadline;
    const auto min_req = set->min_nr_pick_up();
    const auto max_req = set->max_nr_pick_up();
    const int needed = min_req.has_value()
                           ? *min_req
                           : static_cast<int>(leaf_indices.size());
    if (max_req.has_value() && count > *max_req) {
      return {TriState::kViolated,
              "MaxNrPickUp exceeded (" + std::to_string(count) + " > " +
                  std::to_string(*max_req) + ")"};
    }
    if (count >= needed) {
      // satisfied part (max can still be exceeded later; checked above on
      // each evaluation while pending overall)
    } else if (window_closed) {
      return {TriState::kViolated,
              "pick-up subset not reached: " + std::to_string(count) + "/" +
                  std::to_string(needed) + " within " + std::to_string(*t) +
                  "ms"};
    } else {
      verdict.state = TriState::kPending;
    }

    // --- anonymous counts share the pick-up window ----------------------
    const auto min_anon = set->min_nr_anonymous();
    const auto max_anon = set->max_nr_anonymous();
    if (min_anon.has_value() || max_anon.has_value()) {
      std::set<std::string> named;
      std::set<mq::QueueAddress> queues;
      for (std::size_t idx : leaf_indices) {
        const auto* leaf = leaf_states_[idx].leaf;
        queues.insert(leaf->address());
        if (!leaf->recipient_id().empty()) named.insert(leaf->recipient_id());
      }
      std::set<std::string> distinct_named_strangers;
      int anonymous_reads = 0;
      for (const auto& ack : unassigned_acks_) {
        if (ack.read_ts > deadline) continue;
        if (queues.count(ack.queue) == 0) continue;
        if (ack.recipient_id.empty()) {
          ++anonymous_reads;
        } else if (named.count(ack.recipient_id) == 0) {
          distinct_named_strangers.insert(ack.recipient_id);
        }
      }
      const int anon_count =
          anonymous_reads + static_cast<int>(distinct_named_strangers.size());
      if (max_anon.has_value() && anon_count > *max_anon) {
        return {TriState::kViolated,
                "MaxNrAnonymous exceeded (" + std::to_string(anon_count) +
                    ")"};
      }
      if (min_anon.has_value()) {
        if (anon_count >= *min_anon) {
          // satisfied part
        } else if (now > deadline) {
          return {TriState::kViolated,
                  "MinNrAnonymous not reached: " + std::to_string(anon_count) +
                      "/" + std::to_string(*min_anon)};
        } else {
          verdict.state = combine(verdict.state, TriState::kPending);
        }
      }
    }
  }

  // --- own processing condition over subtree leaves -----------------------
  if (auto t = set->msg_processing_time()) {
    const util::TimeMs deadline = send_ts_ + *t;
    int count = 0;
    for (std::size_t idx : leaf_indices) {
      const auto& ls = leaf_states_[idx];
      if (ls.processing_ts.has_value() && *ls.processing_ts <= deadline) {
        ++count;
      }
    }
    const bool window_closed = now > deadline;
    const auto min_req = set->min_nr_processing();
    const auto max_req = set->max_nr_processing();
    const int needed = min_req.has_value()
                           ? *min_req
                           : static_cast<int>(leaf_indices.size());
    if (max_req.has_value() && count > *max_req) {
      return {TriState::kViolated,
              "MaxNrProcessing exceeded (" + std::to_string(count) + " > " +
                  std::to_string(*max_req) + ")"};
    }
    if (count >= needed) {
      // satisfied part
    } else if (window_closed) {
      return {TriState::kViolated,
              "processing subset not reached: " + std::to_string(count) +
                  "/" + std::to_string(needed) + " within " +
                  std::to_string(*t) + "ms"};
    } else {
      verdict.state = combine(verdict.state, TriState::kPending);
    }
  }

  // --- children must individually hold -------------------------------------
  for (const auto& child : set->children()) {
    NodeVerdict child_verdict = eval_node(child.get(), now);
    if (child_verdict.state == TriState::kViolated) return child_verdict;
    verdict.state = combine(verdict.state, child_verdict.state);
  }
  return verdict;
}

EvalState::NodeVerdict EvalState::eval_node(const Condition* node,
                                            util::TimeMs now) {
  if (const auto* set = node->as_destination_set()) {
    return eval_set(set, now);
  }
  for (const auto& ls : leaf_states_) {
    if (ls.leaf == node->as_destination()) {
      return eval_leaf(ls, now);
    }
  }
  return {TriState::kViolated, "internal: leaf state not found"};
}

EvalState::Verdict EvalState::evaluate(util::TimeMs now) {
  if (decided_.has_value()) return *decided_;
  NodeVerdict root;
  if (compiled_ != nullptr) {
    auto st = compiled_->status(now);
    root.state = st.state;
    root.reason = std::move(st.reason);
  } else {
    root = eval_node(condition_.get(), now);
  }
  if (root.state == TriState::kSatisfied) {
    decided_ = Verdict{TriState::kSatisfied, ""};
    return *decided_;
  }
  if (root.state == TriState::kViolated) {
    // Ablation hook: without early failure detection the verdict is held
    // back until every deadline has lapsed (success remains immediate).
    if (!options_.early_failure_detection && now <= max_deadline_ &&
        (evaluation_timeout_ms_ == 0 ||
         now < send_ts_ + evaluation_timeout_ms_)) {
      return Verdict{TriState::kPending, ""};
    }
    decided_ = Verdict{TriState::kViolated, root.reason};
    return *decided_;
  }
  if (evaluation_timeout_ms_ > 0 &&
      now >= send_ts_ + evaluation_timeout_ms_) {
    decided_ = Verdict{TriState::kViolated,
                       "evaluation timeout after " +
                           std::to_string(evaluation_timeout_ms_) + "ms"};
    return *decided_;
  }
  return Verdict{TriState::kPending, ""};
}

void EvalState::collect_deadlines(const Condition* node,
                                  std::vector<util::TimeMs>& out) const {
  if (auto t = node->msg_pick_up_time()) out.push_back(send_ts_ + *t);
  if (auto t = node->msg_processing_time()) out.push_back(send_ts_ + *t);
  for (const auto& child : node->children()) {
    collect_deadlines(child.get(), out);
  }
}

void EvalState::dump(std::ostream& os) const {
  os << "  eval " << cm_id_
     << ": engine=" << (compiled_ != nullptr ? "compiled" : "interpretive")
     << " acks=" << acks_seen_ << " leaves=" << leaf_states_.size();
  if (decided_.has_value()) {
    os << " decided=" << tri_state_name(decided_->state);
  }
  os << "\n";
  if (compiled_ != nullptr) {
    compiled_->describe(os);
  } else {
    std::size_t read = 0;
    std::size_t processed = 0;
    for (const auto& ls : leaf_states_) {
      if (ls.read_ts.has_value()) ++read;
      if (ls.processing_ts.has_value()) ++processed;
    }
    os << "    leaves read=" << read << " processed=" << processed
       << " unassigned=" << unassigned_acks_.size() << "\n";
  }
}

util::TimeMs EvalState::next_deadline(util::TimeMs now) const {
  if (decided_.has_value()) return util::kNoDeadline;
  auto it = std::upper_bound(wakeups_.begin(), wakeups_.end(), now);
  return it == wakeups_.end() ? util::kNoDeadline : *it;
}

}  // namespace cmx::cm
