#include "cm/introspect.hpp"

#include <iomanip>

#include "cm/condition_text.hpp"
#include "cm/control.hpp"
#include "cm/evaluation_manager.hpp"

namespace cmx::cm {

namespace {

void describe_message(const std::string& queue_name, const mq::Message& msg,
                      std::ostream& out) {
  out << "    ";
  if (queue_name == kSenderLogQueue) {
    auto entry = SenderLogEntry::from_message(msg);
    if (entry) {
      const auto& e = entry.value();
      out << "slog " << e.cm_id << " sent@" << e.send_ts << "ms, "
          << e.deliveries.size() << " deliveries";
      if (e.evaluation_timeout_ms > 0) {
        out << ", eval timeout " << e.evaluation_timeout_ms << "ms";
      }
      if (e.has_compensation_data) out << ", app compensation";
      if (e.condition != nullptr) {
        out << "\n      condition: " << condition_to_text(*e.condition);
      }
      out << "\n";
      return;
    }
  }
  if (queue_name == kAckQueue) {
    auto ack = AckRecord::from_message(msg);
    if (ack) {
      const auto& a = ack.value();
      out << (a.type == AckType::kProcessing ? "processing" : "read")
          << " ack for " << a.cm_id << " from "
          << (a.recipient_id.empty() ? "<anonymous>" : a.recipient_id)
          << " @ " << a.queue.to_string() << " read=" << a.read_ts;
      if (a.type == AckType::kProcessing) out << " commit=" << a.commit_ts;
      out << "\n";
      return;
    }
  }
  if (queue_name == kOutcomeQueue) {
    auto record = OutcomeRecord::from_message(msg);
    if (record) {
      const auto& r = record.value();
      out << "outcome " << r.cm_id << " = " << outcome_name(r.outcome)
          << " @ " << r.decided_ts;
      if (!r.reason.empty()) out << " (" << r.reason << ")";
      out << "\n";
      return;
    }
  }
  if (queue_name == kPendingActionQueue) {
    auto marker = PendingActionMarker::from_message(msg);
    if (marker) {
      const auto& m = marker.value();
      out << "PENDING actions for " << m.cm_id << " ("
          << outcome_name(m.outcome) << ", " << m.deliveries.size()
          << " deliveries)\n";
      return;
    }
  }
  if (queue_name == kReceiverLogQueue) {
    auto entry = ReceiverLogEntry::from_message(msg);
    if (entry) {
      const auto& e = entry.value();
      out << "consumed " << e.original_msg_id << " of " << e.cm_id
          << " from " << e.queue << " by "
          << (e.recipient_id.empty() ? "<anonymous>" : e.recipient_id)
          << " @ " << e.read_ts << "\n";
      return;
    }
  }
  // generic rendering (application queues, DS.COMP.Q contents)
  const MessageKind kind = classify(msg);
  out << message_kind_name(kind);
  if (auto cm_id = msg.get_string(prop::kCmId)) out << " of " << *cm_id;
  if (auto dest = msg.get_string(prop::kDest)) out << " -> " << *dest;
  out << " id=" << msg.id() << " prio=" << msg.priority()
      << (msg.persistent() ? " persistent" : " volatile") << " body="
      << msg.body_size() << "B";
  if (kind == MessageKind::kData && !msg.body().empty() &&
      msg.body_size() <= 48) {
    out << " \"" << msg.body() << "\"";
  }
  out << "\n";
}

}  // namespace

void dump_queue(mq::QueueManager& qm, const std::string& queue_name,
                std::ostream& out) {
  auto queue = qm.find_queue(queue_name);
  if (queue == nullptr) {
    out << "  " << queue_name << ": <absent>\n";
    return;
  }
  // Bounded browse: dumping is diagnostic output — never copy a whole deep
  // queue under its lock just to print it.
  constexpr std::size_t kDumpLimit = 64;
  const auto messages = queue->browse(kDumpLimit);
  const auto stats = queue->stats();
  out << "  " << queue_name << ": depth=" << queue->depth()
      << " puts=" << stats.puts << " gets=" << stats.gets
      << " expired=" << stats.expired << "\n";
  for (const auto& msg : messages) {
    describe_message(queue_name, msg, out);
  }
  if (queue->depth() > messages.size()) {
    out << "  ... (" << (queue->depth() - messages.size())
        << " more not shown)\n";
  }
}

void dump_system_state(mq::QueueManager& qm, std::ostream& out) {
  out << "conditional-messaging state on queue manager '" << qm.name()
      << "':\n";
  for (const char* queue : {kSenderLogQueue, kAckQueue, kCompensationQueue,
                            kOutcomeQueue, kPendingActionQueue,
                            kReceiverLogQueue}) {
    if (qm.find_queue(queue) != nullptr) {
      dump_queue(qm, queue, out);
    }
  }
}

void dump_evaluation(const EvaluationManager& eval, std::ostream& out) {
  const auto stats = eval.stats();
  out << "evaluation engine: " << eval.shard_count() << " shard(s), "
      << (eval.options().scan_engine ? "scan" : "heap") << " mode, max_batch="
      << eval.options().max_batch << ", retention="
      << eval.options().decision_retention << "\n";
  out << "  acks: processed=" << stats.acks_processed << " orphaned="
      << stats.acks_orphaned << " malformed=" << stats.acks_malformed
      << " batches=" << stats.ack_batches << "\n";
  out << "  decisions: success=" << stats.decided_success << " failure="
      << stats.decided_failure << " evicted=" << stats.decisions_evicted
      << "\n";
  out << "  condition engine default: "
      << (compiled_eval_enabled() ? "compiled" : "interpretive")
      << " (in-flight states keep the engine they started with)\n";
  out << "  shard  in-flight  dirty   heap  decisions\n";
  const auto shards = eval.shard_info();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& s = shards[i];
    out << "  " << std::setw(5) << i << "  " << std::setw(9) << s.in_flight
        << "  " << std::setw(5) << s.dirty << "  " << std::setw(5) << s.heap
        << "  " << std::setw(9) << s.decisions << "\n";
  }
  eval.dump_states(out);
}

void dump_all(mq::QueueManager& qm, std::ostream& out) {
  dump_system_state(qm, out);
  out << "application queues:\n";
  for (const auto& name : qm.queue_names()) {
    const bool is_system =
        name.rfind("DS.", 0) == 0 || name.rfind("SYSTEM.", 0) == 0;
    if (!is_system) {
      dump_queue(qm, name, out);
    }
  }
}

}  // namespace cmx::cm
