#include "cm/receiver.hpp"

#include "obs/lifecycle.hpp"
#include "util/logging.hpp"

namespace cmx::cm {

ConditionalReceiver::ConditionalReceiver(mq::QueueManager& qm,
                                         std::string recipient_id)
    : qm_(qm), recipient_id_(std::move(recipient_id)) {
  qm_.ensure_queue(kReceiverLogQueue,
                   mq::QueueOptions{.max_depth = SIZE_MAX, .system = true})
      .expect_ok("ensure DS.RLOG.Q");
}

ConditionalReceiver::~ConditionalReceiver() {
  if (session_ != nullptr) {
    session_->rollback();
  }
}

util::Status ConditionalReceiver::begin_tx() {
  if (session_ != nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "transaction already in progress");
  }
  session_ = qm_.create_session(/*transacted=*/true);
  return util::ok_status();
}

util::Status ConditionalReceiver::commit_tx() {
  if (session_ == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no transaction in progress");
  }
  auto session = std::move(session_);
  return session->commit();
}

util::Status ConditionalReceiver::rollback_tx() {
  if (session_ == nullptr) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no transaction in progress");
  }
  auto session = std::move(session_);
  return session->rollback();
}

util::Status ConditionalReceiver::put(const mq::QueueAddress& addr,
                                      mq::Message msg) {
  if (session_ != nullptr) return session_->put(addr, std::move(msg));
  return qm_.put(addr, std::move(msg));
}

util::Result<ReceivedMessage> ConditionalReceiver::read_message(
    const std::string& queue_name, util::TimeMs timeout_ms) {
  const util::TimeMs deadline =
      timeout_ms == util::kNoDeadline ? util::kNoDeadline
                                      : qm_.clock().now_ms() + timeout_ms;
  current_queue_ = queue_name;
  while (true) {
    const util::TimeMs now = qm_.clock().now_ms();
    const util::TimeMs remaining =
        deadline == util::kNoDeadline
            ? util::kNoDeadline
            : (deadline > now ? deadline - now : 0);
    auto got = session_ != nullptr
                   ? session_->get(queue_name, remaining)
                   : qm_.get(queue_name, remaining);
    if (!got) return got.status();

    ReceivedMessage out;
    if (handle(std::move(got).value(), out)) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.delivered;
      return out;
    }
    if (remaining == 0) {
      return util::make_error(util::ErrorCode::kTimeout,
                              "no deliverable message before deadline");
    }
    // The message was consumed internally; keep reading.
  }
}

bool ConditionalReceiver::handle(mq::Message msg, ReceivedMessage& out) {
  const MessageKind kind = classify(msg);
  switch (kind) {
    case MessageKind::kData:
      if (!is_conditional(msg)) {
        // Plain standard message: handed over untouched (paper Figure 6 —
        // applications keep using the MOM directly).
        out.kind = MessageKind::kData;
        out.conditional = false;
        out.message = std::move(msg);
        return true;
      }
      // Conditional data: check for a trailing compensation first — if one
      // is already queued behind us, the pair annihilates (§2.6).
      if (!msg.id().empty()) {
        auto selector = mq::Selector::parse(
            std::string(prop::kKind) + " = 'compensation' AND " +
            prop::kOriginalMsgId + " = '" + msg.id() + "'");
        selector.status().expect_ok("annihilation selector");
        auto comp = session_ != nullptr
                        ? session_->get(current_queue_, 0, &selector.value())
                        : qm_.get(current_queue_, 0, &selector.value());
        if (comp) {
          std::lock_guard<std::mutex> lk(mu_);
          ++stats_.annihilated;
          return false;  // both consumed, nothing delivered
        }
      }
      handle_conditional_data(std::move(msg), out);
      return true;
    case MessageKind::kCompensation:
      return handle_compensation(std::move(msg), current_queue_, out);
    case MessageKind::kSuccess:
      out.kind = MessageKind::kSuccess;
      out.conditional = true;
      out.cm_id = msg.get_string(prop::kCmId).value_or("");
      out.message = std::move(msg);
      return true;
    case MessageKind::kAck:
    case MessageKind::kOutcome:
      // System messages never belong on application queues; drop loudly.
      CMX_WARN("cm.recv") << "unexpected " << message_kind_name(kind)
                          << " message on application queue";
      return false;
  }
  return false;
}

void ConditionalReceiver::handle_conditional_data(mq::Message msg,
                                                  ReceivedMessage& out) {
  const util::TimeMs read_ts = qm_.clock().now_ms();
  if (obs::enabled()) {
    // Pickup latency (the quantity MsgPickUpTime constrains, §2.2):
    // sender's send timestamp -> this read, on the shared clock.
    const util::TimeMs send_ts = msg.get_int(prop::kSendTs).value_or(read_ts);
    obs::trace_stage(obs::Stage::kPickup,
                     obs::ms_delta_us(read_ts - send_ts));
  }
  const std::string cm_id = msg.get_string(prop::kCmId).value_or("");
  const std::string sender_qmgr =
      msg.get_string(prop::kSenderQmgr).value_or("");
  const std::string ack_queue =
      msg.get_string(prop::kAckQueue).value_or(kAckQueue);
  const std::string dest = msg.get_string(prop::kDest).value_or("");

  ReceiverLogEntry log_entry;
  log_entry.cm_id = cm_id;
  log_entry.original_msg_id = msg.id();
  log_entry.queue = current_queue_;
  log_entry.recipient_id = recipient_id_;
  log_entry.read_ts = read_ts;

  AckRecord ack;
  ack.cm_id = cm_id;
  ack.queue = mq::QueueAddress::parse(dest);
  ack.recipient_id = recipient_id_;
  ack.read_ts = read_ts;

  if (session_ != nullptr) {
    // Transactional read: the RLOG entry is written through the session
    // (visible only on commit), and the processing ack is bound to commit.
    session_->put(mq::QueueAddress("", kReceiverLogQueue),
                  log_entry.to_message());
    session_->on_commit([this, ack, sender_qmgr, ack_queue]() mutable {
      ack.type = AckType::kProcessing;
      ack.commit_ts = qm_.clock().now_ms();
      send_ack(ack, sender_qmgr, ack_queue);
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.processing_acks;
    });
  } else {
    // RLOG entry + read ack in ONE put_all: a single store append covers
    // both persistent records (group-commit friendly — the ack queue's
    // batch-draining evaluation engine sits on the other end), and there
    // is no window where the consumption is durable but the ack is not.
    ack.type = AckType::kRead;
    std::vector<std::pair<mq::QueueAddress, mq::Message>> batch;
    batch.reserve(2);
    batch.emplace_back(mq::QueueAddress("", kReceiverLogQueue),
                       log_entry.to_message());
    batch.emplace_back(mq::QueueAddress(sender_qmgr, ack_queue),
                       ack.to_message());
    if (auto s = qm_.put_all(std::move(batch)); !s) {
      CMX_WARN("cm.recv") << "failed to log/ack consumption of " << cm_id
                          << ": " << s.to_string();
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.read_acks;
  }

  out.kind = MessageKind::kData;
  out.conditional = true;
  out.cm_id = cm_id;
  out.processing_required =
      msg.get_bool(prop::kProcessingRequired).value_or(false);
  out.message = std::move(msg);
}

bool ConditionalReceiver::handle_compensation(mq::Message msg,
                                              const std::string& queue_name,
                                              ReceivedMessage& out) {
  const std::string original_id =
      msg.get_string(prop::kOriginalMsgId).value_or("");
  if (!original_id.empty() && remove_original(queue_name, original_id)) {
    // Original still unread: both messages cancel out (§2.6).
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.annihilated;
    return false;
  }
  if (!original_id.empty() && rlog_contains(original_id)) {
    // The original was consumed here: deliver the compensation so the
    // application can undo its effects.
    out.kind = MessageKind::kCompensation;
    out.conditional = true;
    out.cm_id = msg.get_string(prop::kCmId).value_or("");
    out.message = std::move(msg);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.compensations_delivered;
    return true;
  }
  // No local consumption record (e.g. a shared queue whose original went
  // to another receiver): not ours to compensate.
  CMX_DEBUG("cm.recv") << "dropping compensation for foreign message "
                       << original_id;
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.compensations_dropped;
  return false;
}

bool ConditionalReceiver::remove_original(const std::string& queue_name,
                                          const std::string& original_msg_id) {
  if (session_ != nullptr) {
    auto selector = mq::Selector::parse("JMSMessageID = '" + original_msg_id +
                                        "'");
    selector.status().expect_ok("original-removal selector");
    auto got = session_->get(queue_name, 0, &selector.value());
    return got.is_ok();
  }
  return qm_.remove_message(queue_name, original_msg_id).is_ok();
}

void ConditionalReceiver::send_ack(const AckRecord& ack,
                                   const std::string& sender_qmgr,
                                   const std::string& ack_queue) {
  auto msg = ack.to_message();
  auto s = qm_.put(mq::QueueAddress(sender_qmgr, ack_queue), std::move(msg));
  if (!s) {
    CMX_WARN("cm.recv") << "failed to send ack for " << ack.cm_id << ": "
                        << s.to_string();
  }
}

void ConditionalReceiver::log_consumption(const ReceiverLogEntry& entry) {
  auto s = qm_.put_local(kReceiverLogQueue, entry.to_message());
  if (!s) {
    CMX_WARN("cm.recv") << "failed to log consumption: " << s.to_string();
  }
}

bool ConditionalReceiver::rlog_contains(
    const std::string& original_msg_id) const {
  auto rlog = qm_.find_queue(kReceiverLogQueue);
  if (rlog == nullptr) return false;
  for (const auto& msg : rlog->browse()) {
    if (msg.get_string(prop::kOriginalMsgId) == original_msg_id) return true;
  }
  return false;
}

ReceiverStats ConditionalReceiver::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace cmx::cm
