// EvaluationManager (§2.5): the sender-side component that consumes the
// acknowledgment queue (DS.ACK.Q), demultiplexes acks by conditional
// message id, drives each message's EvalState, and — at the moment a
// verdict is reached (by acks or by a deadline passing) — invokes the
// outcome action exactly once per conditional message.
//
// Threading: one internal thread. It sleeps on its own condition variable
// (woken by a put-listener on DS.ACK.Q, by registrations, and by the
// clock when the earliest pending deadline arrives), so it is idle unless
// there is work — no polling.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cm/control.hpp"
#include "cm/eval_state.hpp"
#include "mq/queue_manager.hpp"

namespace cmx::cm {

struct EvaluationStats {
  std::uint64_t acks_processed = 0;
  std::uint64_t acks_orphaned = 0;  // ack for an unknown/decided message
  std::uint64_t decided_success = 0;
  std::uint64_t decided_failure = 0;
};

class EvaluationManager {
 public:
  // `on_outcome(record, deferred)` runs on the evaluation thread. The
  // `deferred` flag echoes register_message(): Dependency-Sphere members
  // get their outcome recorded but their outcome ACTIONS postponed (§3.1).
  using OutcomeAction =
      std::function<void(const OutcomeRecord& record, bool deferred)>;

  EvaluationManager(mq::QueueManager& qm, OutcomeAction on_outcome);
  ~EvaluationManager();

  EvaluationManager(const EvaluationManager&) = delete;
  EvaluationManager& operator=(const EvaluationManager&) = delete;

  // Begins monitoring a conditional message. Must be called before the
  // fan-out messages are sent so no ack can race the registration.
  void register_message(std::unique_ptr<EvalState> state, bool deferred);

  // Forces a decision for a pending message, bypassing its condition tree
  // (used by Dependency-Spheres when the sphere resolves while a member is
  // still pending, and by send-failure cleanup). Returns kNotFound if the
  // message is not in flight. The outcome action runs as usual.
  util::Status force_decision(const std::string& cm_id, Outcome outcome,
                              const std::string& reason);

  bool is_in_flight(const std::string& cm_id) const;
  std::size_t in_flight() const;
  EvaluationStats stats() const;

  // Blocks (bounded by the real-time cap used in tests) until `cm_id` has
  // been decided or `real_cap_ms` elapses. Returns true when decided.
  bool await_decided(const std::string& cm_id, util::TimeMs real_cap_ms) const;

  void stop();

 private:
  struct Entry {
    std::unique_ptr<EvalState> state;
    bool deferred = false;
  };

  void loop();
  // Drains DS.ACK.Q without blocking; returns number of acks applied.
  std::size_t drain_acks_locked(std::unique_lock<std::mutex>& lk);
  // Both take the loop's scan timestamp: deadlines are computed against
  // the same instant the states were evaluated at, so a deadline passing
  // while outcome actions run yields an immediate (expired) wait instead
  // of being filtered out as "already past" — which would strand a
  // decidable state until the next external wake-up.
  void evaluate_all_locked(std::unique_lock<std::mutex>& lk,
                           util::TimeMs scan_time);
  util::TimeMs earliest_deadline_locked(util::TimeMs scan_time) const;
  void finalize_locked(std::unique_lock<std::mutex>& lk,
                       const std::string& cm_id, Entry entry,
                       const EvalState::Verdict& verdict);

  mq::QueueManager& qm_;
  OutcomeAction on_outcome_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::map<std::string, Entry> states_;
  std::map<std::string, Outcome> decisions_;
  EvaluationStats stats_;
  bool wake_ = false;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace cmx::cm
