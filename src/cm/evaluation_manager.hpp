// EvaluationManager (§2.5): the sender-side component that consumes the
// acknowledgment queue (DS.ACK.Q), demultiplexes acks by conditional
// message id, drives each message's EvalState, and — at the moment a
// verdict is reached (by acks or by a deadline passing) — invokes the
// outcome action exactly once per conditional message.
//
// Engine (DESIGN.md §8): in-flight state is sharded by hash(cm_id) into
// `EvaluationOptions::shard_count` independent shards, each with its own
// mutex, worker thread, and condition variable, so evaluation scales with
// cores the way the queue manager's striped name map does. Inside a shard
// the worker is event-driven rather than scan-based: an applied ack only
// marks its own EvalState dirty, a min-heap of absolute deadlines (with
// lazy deletion) names the states whose deadline has lapsed, and a worker
// pass evaluates exactly the dirty/lapsed states — O(log N) per event
// instead of the former O(N) full scan per wakeup. A single ack-router
// thread drains DS.ACK.Q in batches (Queue::try_get_batch), partitions
// each batch by shard in one pass, and applies every shard's slice under
// one lock acquisition.
//
// Verdict monotonicity is shard-local: one shard owns all state of a
// given cm_id (states, decision record, await_decided waiters), so the
// once-decided-never-changes invariant needs no cross-shard coordination.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "cm/control.hpp"
#include "cm/eval_state.hpp"
#include "mq/queue_manager.hpp"
#include "obs/registry.hpp"

namespace cmx::cm {

// Default shard count; override via EvaluationOptions::shard_count.
inline constexpr std::size_t kEvalShards = 8;

struct EvaluationOptions {
  std::size_t shard_count = kEvalShards;
  // Acks pulled from DS.ACK.Q per router drain pass (one batch is
  // partitioned by shard and applied slice-wise, one lock per shard).
  std::size_t max_batch = 256;
  // Decided-outcome retention across all shards: decisions beyond this
  // many are evicted FIFO (await_decided() on an evicted id times out).
  std::size_t decision_retention = 1 << 16;
  // A/B baseline preserving the seed's algorithm: full evaluate-all scan
  // and full earliest-deadline scan on every wakeup instead of the
  // dirty-set/heap engine. Pair with shard_count=1, max_batch=1 to
  // reproduce the pre-sharding engine (bench_eval_scale).
  bool scan_engine = false;
};

struct EvaluationStats {
  std::uint64_t acks_processed = 0;
  std::uint64_t acks_orphaned = 0;   // ack for an unknown/decided message
  std::uint64_t acks_malformed = 0;  // undecodable messages on DS.ACK.Q
  std::uint64_t ack_batches = 0;     // router drain passes that saw acks
  std::uint64_t decided_success = 0;
  std::uint64_t decided_failure = 0;
  std::uint64_t decisions_evicted = 0;  // retention-cap FIFO evictions
};

// Introspection snapshot of one shard (tests, system_inspector).
struct EvalShardInfo {
  std::size_t in_flight = 0;
  std::size_t dirty = 0;      // states marked dirty, not yet evaluated
  std::size_t heap = 0;       // heap entries, including stale ones
  std::size_t decisions = 0;  // retained decided outcomes
};

class EvaluationManager {
 public:
  // `on_outcome(record, deferred)` runs on a shard worker thread (or the
  // caller's thread for force_decision). The `deferred` flag echoes
  // register_message(): Dependency-Sphere members get their outcome
  // recorded but their outcome ACTIONS postponed (§3.1).
  using OutcomeAction =
      std::function<void(const OutcomeRecord& record, bool deferred)>;

  EvaluationManager(mq::QueueManager& qm, OutcomeAction on_outcome,
                    EvaluationOptions options = {});
  ~EvaluationManager();

  EvaluationManager(const EvaluationManager&) = delete;
  EvaluationManager& operator=(const EvaluationManager&) = delete;

  // Begins monitoring a conditional message. Must be called before the
  // fan-out messages are sent so no ack can race the registration.
  void register_message(std::unique_ptr<EvalState> state, bool deferred);

  // Forces a decision for a pending message, bypassing its condition tree
  // (used by Dependency-Spheres when the sphere resolves while a member is
  // still pending, and by send-failure cleanup). Returns kNotFound if the
  // message is not in flight. The outcome action runs as usual.
  util::Status force_decision(const std::string& cm_id, Outcome outcome,
                              const std::string& reason);

  bool is_in_flight(const std::string& cm_id) const;
  std::size_t in_flight() const;
  EvaluationStats stats() const;

  // Blocks (bounded by the real-time cap used in tests) until `cm_id` has
  // been decided or `real_cap_ms` elapses. Returns true when decided.
  bool await_decided(const std::string& cm_id, util::TimeMs real_cap_ms) const;

  // Idempotent: the first call shuts the engine down, later calls are
  // no-ops (the destructor relies on this).
  void stop();

  const EvaluationOptions& options() const { return options_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(const std::string& cm_id) const;
  std::vector<EvalShardInfo> shard_info() const;

  // Streams a bounded sample of in-flight evaluation states (engine,
  // ack counts, per-node residuals) into `out`; see dump_evaluation.
  void dump_states(std::ostream& out, std::size_t per_shard_limit = 4) const;

 private:
  struct Entry {
    std::unique_ptr<EvalState> state;
    bool deferred = false;
    bool dirty = false;  // queued in Shard::dirty, not yet evaluated
    // Lazy heap deletion: only the heap item carrying `heap_gen` is live;
    // items with older generations are skipped when popped.
    std::uint64_t heap_gen = 0;
    util::TimeMs heap_deadline = util::kNoDeadline;  // deadline of live item
  };

  struct HeapItem {
    util::TimeMs deadline;
    std::uint64_t gen;
    std::string cm_id;
    bool operator>(const HeapItem& other) const {
      return deadline > other.deadline;
    }
  };

  struct Shard {
    std::size_t index = 0;
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    std::map<std::string, Entry> states;
    std::vector<std::string> dirty;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    std::map<std::string, Outcome> decisions;
    std::deque<std::string> decision_fifo;
    EvaluationStats stats;
    bool wake = false;
    bool stopping = false;
    std::thread worker;
    // Per-shard gauges, resolved lazily once metrics are enabled.
    obs::Gauge* in_flight_gauge = nullptr;
    obs::Gauge* dirty_gauge = nullptr;
  };

  Shard& shard_for(const std::string& cm_id) const;
  void shard_loop(Shard& shard);
  void router_loop();
  // Pulls batches off DS.ACK.Q until it is empty, partitioning each batch
  // by shard and applying per-shard slices under one lock acquisition.
  void drain_acks();
  void apply_acks(Shard& shard, std::vector<AckRecord>& acks);
  // Pushes a fresh heap item when `deadline` improves on the live one.
  static void push_deadline_locked(Shard& shard, Entry& entry,
                                   const std::string& cm_id,
                                   util::TimeMs deadline);
  void finalize_locked(Shard& shard, std::unique_lock<std::mutex>& lk,
                       const std::string& cm_id, Entry entry,
                       const EvalState::Verdict& verdict);
  void record_decision_locked(Shard& shard, const std::string& cm_id,
                              Outcome outcome);

  mq::QueueManager& qm_;
  OutcomeAction on_outcome_;
  const EvaluationOptions options_;
  const std::size_t per_shard_retention_;

  std::vector<std::unique_ptr<Shard>> shards_;

  std::thread router_;
  mutable std::mutex router_mu_;
  std::condition_variable router_cv_;
  bool router_wake_ = true;  // drain anything queued before construction
  bool router_stopping_ = false;
  std::atomic<std::uint64_t> acks_malformed_{0};
  std::atomic<std::uint64_t> ack_batches_{0};

  std::mutex stop_mu_;
  bool stopped_ = false;
};

}  // namespace cmx::cm
