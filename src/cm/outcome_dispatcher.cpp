#include "cm/outcome_dispatcher.hpp"

#include "util/logging.hpp"

namespace cmx::cm {

OutcomeDispatcher::OutcomeDispatcher(mq::QueueManager& qm, Handler fallback)
    : qm_(qm), fallback_(std::move(fallback)) {
  qm_.ensure_queue(kOutcomeQueue,
                   mq::QueueOptions{.max_depth = SIZE_MAX, .system = true})
      .expect_ok("ensure DS.OUTCOME.Q");
  worker_ = std::thread([this] { loop(); });
}

OutcomeDispatcher::~OutcomeDispatcher() { stop(); }

void OutcomeDispatcher::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      if (worker_.joinable()) worker_.join();
      return;
    }
    stopping_ = true;
  }
  // Wake the blocking get by closing... we must not close the queue (it
  // belongs to the service); instead enqueue a no-op wake-up message.
  mq::Message poke;
  poke.set_property(prop::kKind, std::string("outcome"));
  poke.set_property(prop::kCmId, std::string("__dispatcher_stop__"));
  poke.set_property(prop::kOutcome, std::string("failure"));
  poke.set_persistence(mq::Persistence::kNonPersistent);
  qm_.put_local(kOutcomeQueue, std::move(poke));
  if (worker_.joinable()) worker_.join();
}

void OutcomeDispatcher::on_outcome(const std::string& cm_id,
                                   Handler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  handlers_[cm_id] = std::move(handler);
}

bool OutcomeDispatcher::await_dispatched(std::size_t n,
                                         util::TimeMs cap_ms) const {
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, std::chrono::milliseconds(cap_ms),
                      [&] { return dispatched_ >= n; });
}

std::size_t OutcomeDispatcher::dispatched() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dispatched_;
}

void OutcomeDispatcher::loop() {
  while (true) {
    auto got = qm_.get(kOutcomeQueue, util::kNoDeadline);
    if (!got) {
      if (got.code() == util::ErrorCode::kClosed) return;
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
    }
    auto record = OutcomeRecord::from_message(got.value());
    if (!record) {
      CMX_WARN("cm.dispatch") << "malformed outcome dropped: "
                              << record.status().to_string();
      continue;
    }
    Handler handler;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = handlers_.find(record.value().cm_id);
      if (it != handlers_.end()) {
        handler = std::move(it->second);
        handlers_.erase(it);
      } else {
        handler = fallback_;
      }
    }
    if (handler) handler(record.value());
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++dispatched_;
    }
    cv_.notify_all();
  }
}

}  // namespace cmx::cm
