// Conditional messaging for publish/subscribe — the second messaging
// model the paper's definition ranges over (§2: "specific models of
// conditional messaging can be defined with respect to specific models of
// messaging, such as message queuing and publish/subscribe systems") and
// part of its future-work agenda.
//
// A conditional publish resolves the topic against the broker's current
// subscriptions and attaches pick-up / processing conditions over that
// snapshot of subscribers: "at least k of the current subscribers must
// read (or transactionally process) the event within T". Everything
// downstream — fan-out, implicit acknowledgments, evaluation, outcome
// actions — is the queuing machinery of §§2.3–2.6, reused unchanged.
#pragma once

#include <optional>
#include <string>

#include "cm/sender.hpp"
#include "mq/pubsub.hpp"

namespace cmx::cm {

struct PublishConditions {
  // Read deadline over the matched subscriptions (ms after publish).
  std::optional<util::TimeMs> pick_up_within;
  // How many matched subscribers must read in time; default: all.
  std::optional<int> min_subscribers;

  // Transactional-processing deadline and cardinality (optional).
  std::optional<util::TimeMs> processing_within;
  std::optional<int> min_processing;

  // Evaluation hard cap (0 = none beyond the condition deadlines).
  util::TimeMs evaluation_timeout_ms = 0;
};

class ConditionalPublisher {
 public:
  // `service` must live on the broker's queue manager (subscription
  // queues are local queues there).
  ConditionalPublisher(ConditionalMessagingService& service,
                       mq::TopicBroker& broker);

  // Publishes `body` to `topic` under `conditions`; returns the
  // conditional message id. Fails with kFailedPrecondition when no
  // subscription matches (a condition over zero subscribers is vacuous
  // and almost certainly an application error), kInvalidArgument when the
  // cardinalities exceed the matched-subscriber count.
  util::Result<std::string> publish(const std::string& topic,
                                    const std::string& body,
                                    const PublishConditions& conditions);

  // As above with application-defined compensation data (§2.6).
  util::Result<std::string> publish(const std::string& topic,
                                    const std::string& body,
                                    const std::string& compensation_body,
                                    const PublishConditions& conditions);

 private:
  util::Result<std::string> publish_internal(
      const std::string& topic, const std::string& body,
      const std::optional<std::string>& compensation_body,
      const PublishConditions& conditions);

  // Builds the condition tree over the currently-matching subscriptions.
  util::Result<ConditionPtr> build_condition(
      const std::string& topic, const PublishConditions& conditions) const;

  ConditionalMessagingService& service_;
  mq::TopicBroker& broker_;
};

}  // namespace cmx::cm
