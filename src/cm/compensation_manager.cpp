#include "cm/compensation_manager.hpp"

#include "util/logging.hpp"

namespace cmx::cm {

CompensationManager::CompensationManager(mq::QueueManager& qm) : qm_(qm) {
  qm_.ensure_queue(kCompensationQueue,
                   mq::QueueOptions{.max_depth = SIZE_MAX, .system = true})
      .expect_ok("ensure DS.COMP.Q");
}

util::Status CompensationManager::stage(
    const std::string& cm_id,
    const std::optional<std::string>& compensation_body,
    const std::vector<std::pair<mq::QueueAddress, std::string>>& deliveries) {
  auto staged = build_staged(cm_id, compensation_body, deliveries);
  const std::size_t n = staged.size();
  std::vector<std::pair<std::string, mq::Message>> puts;
  puts.reserve(n);
  for (auto& comp : staged) {
    puts.emplace_back(kCompensationQueue, std::move(comp));
  }
  if (auto s = qm_.put_local_batch(std::move(puts)); !s) return s;
  note_staged(n);
  return util::ok_status();
}

std::vector<mq::Message> CompensationManager::build_staged(
    const std::string& cm_id,
    const std::optional<std::string>& compensation_body,
    const std::vector<std::pair<mq::QueueAddress, std::string>>& deliveries)
    const {
  std::vector<mq::Message> staged;
  staged.reserve(deliveries.size());
  for (const auto& [addr, original_msg_id] : deliveries) {
    mq::Message comp(compensation_body.value_or(""));
    comp.set_property(prop::kKind, std::string("compensation"));
    comp.set_property(prop::kCmId, cm_id);
    comp.set_property(prop::kOriginalMsgId, original_msg_id);
    comp.set_property(prop::kCompType,
                      std::string(compensation_body.has_value()
                                      ? "application"
                                      : "system"));
    comp.set_property(prop::kDest, addr.to_string());
    comp.set_correlation_id(original_msg_id);
    comp.set_persistence(mq::Persistence::kPersistent);
    staged.push_back(std::move(comp));
  }
  return staged;
}

void CompensationManager::note_staged(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.staged += n;
}

std::vector<mq::Message> CompensationManager::take_staged(
    const std::string& cm_id) {
  std::vector<mq::Message> staged;
  auto selector =
      mq::Selector::parse(std::string(prop::kCmId) + " = '" + cm_id + "'");
  selector.status().expect_ok("compensation selector");
  while (true) {
    auto got = qm_.get(kCompensationQueue, 0, &selector.value());
    if (!got) break;
    staged.push_back(std::move(got).value());
  }
  return staged;
}

util::Status CompensationManager::release(const std::string& cm_id) {
  auto staged = take_staged(cm_id);
  for (auto& comp : staged) {
    const auto dest = comp.get_string(prop::kDest).value_or("");
    comp.erase_property(prop::kDest);
    const auto addr = mq::QueueAddress::parse(dest);
    if (auto s = qm_.put(addr, std::move(comp)); !s) {
      CMX_WARN("cm.comp") << "failed to release compensation for " << cm_id
                          << " to " << dest << ": " << s.to_string();
      return s;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.released;
  }
  return util::ok_status();
}

util::Status CompensationManager::discard(const std::string& cm_id) {
  auto staged = take_staged(cm_id);
  std::lock_guard<std::mutex> lk(mu_);
  stats_.discarded += staged.size();
  return util::ok_status();
}

util::Status CompensationManager::send_success_notifications(
    const std::string& cm_id,
    const std::vector<std::pair<mq::QueueAddress, std::string>>& deliveries) {
  for (const auto& [addr, original_msg_id] : deliveries) {
    mq::Message note;
    note.set_property(prop::kKind, std::string("success"));
    note.set_property(prop::kCmId, cm_id);
    note.set_property(prop::kOriginalMsgId, original_msg_id);
    note.set_correlation_id(original_msg_id);
    note.set_persistence(mq::Persistence::kPersistent);
    if (auto s = qm_.put(addr, std::move(note)); !s) return s;
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.success_notifications;
  }
  return util::ok_status();
}

std::size_t CompensationManager::staged_count(const std::string& cm_id) const {
  auto queue = qm_.find_queue(kCompensationQueue);
  if (queue == nullptr) return 0;
  std::size_t count = 0;
  for (const auto& msg : queue->browse()) {
    if (msg.get_string(prop::kCmId) == cm_id) ++count;
  }
  return count;
}

CompensationStats CompensationManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace cmx::cm
