#include "cm/conditional_publisher.hpp"

#include "cm/condition_builder.hpp"

namespace cmx::cm {

ConditionalPublisher::ConditionalPublisher(
    ConditionalMessagingService& service, mq::TopicBroker& broker)
    : service_(service), broker_(broker) {}

util::Result<ConditionPtr> ConditionalPublisher::build_condition(
    const std::string& topic, const PublishConditions& conditions) const {
  const auto subs = broker_.matching(topic);
  if (subs.empty()) {
    return util::make_error(util::ErrorCode::kFailedPrecondition,
                            "no subscription matches topic '" + topic + "'");
  }
  const int n = static_cast<int>(subs.size());
  if (conditions.min_subscribers.value_or(0) > n ||
      conditions.min_processing.value_or(0) > n) {
    return util::make_error(
        util::ErrorCode::kInvalidArgument,
        "required subscriber count exceeds matched subscriptions (" +
            std::to_string(n) + ")");
  }
  if (!conditions.pick_up_within.has_value() &&
      !conditions.processing_within.has_value()) {
    return util::make_error(util::ErrorCode::kInvalidArgument,
                            "publish conditions specify no deadline");
  }

  SetBuilder builder;
  const auto& qm_name = service_.queue_manager().name();
  for (const auto& sub : subs) {
    // Subscribers are anonymous from the publisher's perspective: the
    // destination is the subscription's backing queue.
    builder.add(
        DestBuilder(mq::QueueAddress(qm_name, sub.queue)).build());
  }
  if (conditions.pick_up_within.has_value()) {
    builder.pick_up_within(*conditions.pick_up_within);
    if (conditions.min_subscribers.has_value()) {
      builder.min_nr_pick_up(*conditions.min_subscribers);
    }
  }
  if (conditions.processing_within.has_value()) {
    builder.processing_within(*conditions.processing_within);
    if (conditions.min_processing.has_value()) {
      builder.min_nr_processing(*conditions.min_processing);
    }
  }
  return ConditionPtr(builder.build());
}

util::Result<std::string> ConditionalPublisher::publish(
    const std::string& topic, const std::string& body,
    const PublishConditions& conditions) {
  return publish_internal(topic, body, std::nullopt, conditions);
}

util::Result<std::string> ConditionalPublisher::publish(
    const std::string& topic, const std::string& body,
    const std::string& compensation_body,
    const PublishConditions& conditions) {
  return publish_internal(topic, body, compensation_body, conditions);
}

util::Result<std::string> ConditionalPublisher::publish_internal(
    const std::string& topic, const std::string& body,
    const std::optional<std::string>& compensation_body,
    const PublishConditions& conditions) {
  auto condition = build_condition(topic, conditions);
  if (!condition) return condition.status();

  SendOptions options;
  options.evaluation_timeout_ms = conditions.evaluation_timeout_ms;
  options.properties[mq::kTopicProperty] = topic;
  if (compensation_body.has_value()) {
    return service_.send_message(body, *compensation_body,
                                 *condition.value(), options);
  }
  return service_.send_message(body, *condition.value(), options);
}

}  // namespace cmx::cm
