// Operational introspection: human-readable dumps of the conditional
// messaging system queues on a queue manager — what an operator would
// reach for when a conditional message "hangs". Decodes the records the
// middleware keeps (sender log entries, staged compensations, outcome
// notifications, pending-action markers, receiver log entries) instead of
// printing raw bytes.
#pragma once

#include <ostream>
#include <string>

#include "mq/queue_manager.hpp"

namespace cmx::cm {

class EvaluationManager;

// One-line summary per message for a single queue. Unknown/opaque
// messages are summarized by kind, id, and body size.
void dump_queue(mq::QueueManager& qm, const std::string& queue_name,
                std::ostream& out);

// Dumps all conditional-messaging system queues present on `qm`
// (DS.SLOG.Q, DS.ACK.Q, DS.COMP.Q, DS.OUTCOME.Q, DS.PEND.Q, DS.RLOG.Q)
// with decoded records.
void dump_system_state(mq::QueueManager& qm, std::ostream& out);

// Everything: system queues plus application queue depths.
void dump_all(mq::QueueManager& qm, std::ostream& out);

// Per-shard view of the evaluation engine: in-flight evaluations, dirty
// (re-evaluation pending) entries, live+stale heap sizes, retained
// decisions — plus the engine-wide ack counters. The first stop when a
// conditional message is "stuck pending": it shows which shard owns it
// and whether acks are flowing at all.
void dump_evaluation(const EvaluationManager& eval, std::ostream& out);

}  // namespace cmx::cm
