// E1 — the paper's Example 1 (Figures 1/4) as a measured scenario: the
// meeting notification with its nested conditions, run end-to-end across
// two queue managers. Reports, per scenario variant:
//   * the decided outcome (sanity: matches the truth table),
//   * latency from send to outcome notification,
//   * the standard-message accounting behind one conditional message
//     (data fan-out, acks, log entries, staged compensations) — the
//     paper's §4 point that this infrastructure is exactly what an
//     application would otherwise build itself.
//
// Deadlines are scaled: 1 paper-"day" = 50 ms.
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/network.hpp"
#include "mq/queue_manager.hpp"

using namespace cmx;

namespace {

constexpr util::TimeMs kDay = 50;
constexpr util::TimeMs kWeek = 7 * kDay;
constexpr int kRounds = 20;

struct Behaviour {
  bool r1_processes, r2_processes, r3_processes, r4_processes;
  bool anyone_reads = true;
};

cm::ConditionPtr condition() {
  return cm::SetBuilder()
      .pick_up_within(2 * kDay)
      .add(cm::DestBuilder(mq::QueueAddress("QMB", "Q.R3"), "receiver3")
               .processing_within(kWeek)
               .build())
      .add(cm::SetBuilder()
               .processing_within(3 * kDay)
               .min_nr_processing(2)
               .add(cm::DestBuilder(mq::QueueAddress("QMB", "Q.R1"),
                                    "receiver1")
                        .build())
               .add(cm::DestBuilder(mq::QueueAddress("QMB", "Q.R2"),
                                    "receiver2")
                        .build())
               .add(cm::DestBuilder(mq::QueueAddress("QMB", "Q.R4"),
                                    "receiver4")
                        .build())
               .build())
      .build();
}

struct RoundResult {
  cm::Outcome outcome;
  util::TimeMs latency_ms;
};

RoundResult run_round(const Behaviour& b) {
  util::SystemClock clock;
  mq::QueueManager qma("QMA", clock);
  mq::QueueManager qmb("QMB", clock);
  for (const char* q : {"Q.R1", "Q.R2", "Q.R3", "Q.R4"}) {
    qmb.create_queue(q).expect_ok("create");
  }
  mq::Network net;
  net.add(qma);
  net.add(qmb);
  cm::ConditionalMessagingService service(qma);

  const auto start = clock.now_ms();
  auto cm_id = service.send_message("meeting", "meeting cancelled",
                                    *condition());
  cm_id.status().expect_ok("send");

  auto act = [&](const char* name, const char* queue, bool processes) {
    if (!b.anyone_reads) return;
    cm::ConditionalReceiver rx(qmb, name);
    if (processes) {
      rx.begin_tx().expect_ok("begin");
      rx.read_message(queue, 5000).status().expect_ok("read");
      rx.commit_tx().expect_ok("commit");
    } else {
      rx.read_message(queue, 5000).status().expect_ok("read");
    }
  };
  act("receiver1", "Q.R1", b.r1_processes);
  act("receiver2", "Q.R2", b.r2_processes);
  act("receiver3", "Q.R3", b.r3_processes);
  act("receiver4", "Q.R4", b.r4_processes);

  auto outcome = service.await_outcome(cm_id.value(), 60'000);
  outcome.status().expect_ok("outcome");
  RoundResult result{outcome.value().outcome, clock.now_ms() - start};
  net.shutdown();
  return result;
}

void report(const char* label, const Behaviour& b,
            cm::Outcome expected, util::TimeMs expected_decision_ms) {
  std::vector<util::TimeMs> latencies;
  int correct = 0;
  for (int round = 0; round < kRounds; ++round) {
    auto result = run_round(b);
    if (result.outcome == expected) ++correct;
    latencies.push_back(result.latency_ms);
  }
  const double mean =
      std::accumulate(latencies.begin(), latencies.end(), 0.0) /
      latencies.size();
  std::printf("%-34s expected=%-8s correct=%2d/%2d  mean latency %7.1f ms"
              "  (decisive deadline %lld ms)\n",
              label, cm::outcome_name(expected), correct, kRounds, mean,
              static_cast<long long>(expected_decision_ms));
}

void message_accounting() {
  util::SystemClock clock;
  mq::QueueManager qma("QMA", clock);
  mq::QueueManager qmb("QMB", clock);
  for (const char* q : {"Q.R1", "Q.R2", "Q.R3", "Q.R4"}) {
    qmb.create_queue(q).expect_ok("create");
  }
  mq::Network net;
  net.add(qma);
  net.add(qmb);
  cm::ConditionalMessagingService service(qma);
  service.send_message("meeting", "cancel", *condition())
      .status()
      .expect_ok("send");
  // let the fan-out cross the channel
  while (qmb.find_queue("Q.R1")->depth() +
             qmb.find_queue("Q.R2")->depth() +
             qmb.find_queue("Q.R3")->depth() +
             qmb.find_queue("Q.R4")->depth() <
         4) {
    clock.sleep_ms(1);
  }
  std::printf("\nmessage accounting for ONE conditional message "
              "(4 required destinations):\n");
  std::printf("  data messages fanned out : 4 (one per destination queue)\n");
  std::printf("  sender log entries       : %zu on %s\n",
              qma.find_queue(cm::kSenderLogQueue)->depth(),
              cm::kSenderLogQueue);
  std::printf("  staged compensations     : %zu on %s\n",
              qma.find_queue(cm::kCompensationQueue)->depth(),
              cm::kCompensationQueue);
  std::printf("  acks expected            : 4 -> %s\n", cm::kAckQueue);
  std::printf("  outcome notifications    : 1 -> %s\n", cm::kOutcomeQueue);
  net.shutdown();
}

}  // namespace

int main() {
  std::printf("E1: Example 1 scenario matrix (%d rounds each; 1 day = %lld ms"
              ")\n\n", kRounds, static_cast<long long>(kDay));
  // decisive deadlines: success decides when the last needed ack arrives
  // (~immediately); failures decide at the first violated deadline.
  report("A: r1,r2,r3 process; r4 reads", {true, true, true, false},
         cm::Outcome::kSuccess, 0);
  report("B: only r1 processes", {true, false, false, false},
         cm::Outcome::kFailure, 3 * kDay);
  report("C: r3 does not process", {true, true, false, false},
         cm::Outcome::kFailure, kWeek);
  report("D: nobody reads", {false, false, false, false, false},
         cm::Outcome::kFailure, 2 * kDay);
  message_accounting();
  return 0;
}
