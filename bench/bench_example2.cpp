// E2 — the paper's Example 2 (Figures 2/5) as a measured workload: flights
// arrive on one central queue; any controller must pick each flight up
// within the deadline (paper: 20 s, scaled here to 200 ms), evaluation
// timeout just above it (§2.5's 21 s -> 210 ms).
//
// Sweeps offered load (mean inter-arrival gap) against pool size and
// prints the deadline-hit rate: the paper's qualitative claim — the
// middleware detects late pick-up and triggers exception handling — shows
// up as the hit-rate surface falling as load rises and recovering with
// more controllers.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"
#include "util/random.hpp"

using namespace cmx;

namespace {

constexpr util::TimeMs kPickUpDeadline = 200;
constexpr util::TimeMs kEvalTimeout = 210;
constexpr util::TimeMs kServiceTimeMs = 35;  // per-flight controller work
constexpr int kFlights = 60;

struct CellResult {
  double hit_rate;
  double escalations;
};

CellResult run_cell(int controllers, util::TimeMs mean_gap_ms) {
  util::SystemClock clock;
  mq::QueueManager qm("QM.TOWER", clock);
  qm.create_queue("Q.CENTRAL").expect_ok("create");
  cm::ConditionalMessagingService service(qm);

  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (int i = 0; i < controllers; ++i) {
    pool.emplace_back([&qm, &stop, i] {
      cm::ConditionalReceiver rx(qm, "controller-" + std::to_string(i));
      while (!stop.load()) {
        auto msg = rx.read_message("Q.CENTRAL", 20);
        if (msg.is_ok() && msg.value().kind == cm::MessageKind::kData) {
          qm.clock().sleep_ms(kServiceTimeMs);  // handle the flight
        }
      }
    });
  }

  auto condition = cm::DestBuilder(mq::QueueAddress("QM.TOWER", "Q.CENTRAL"))
                       .pick_up_within(kPickUpDeadline)
                       .build();
  cm::SendOptions options;
  options.evaluation_timeout_ms = kEvalTimeout;

  util::Rng rng(controllers * 1000 + mean_gap_ms);
  std::vector<std::string> ids;
  for (int i = 0; i < kFlights; ++i) {
    auto cm_id = service.send_message("flight " + std::to_string(i),
                                      *condition, options);
    cm_id.status().expect_ok("send");
    ids.push_back(cm_id.value());
    clock.sleep_ms(static_cast<util::TimeMs>(rng.exponential(
        static_cast<double>(mean_gap_ms))));
  }

  int hits = 0;
  for (const auto& id : ids) {
    auto outcome = service.await_outcome(id, 30'000);
    outcome.status().expect_ok("outcome");
    if (outcome.value().outcome == cm::Outcome::kSuccess) ++hits;
  }
  stop.store(true);
  for (auto& t : pool) t.join();
  return CellResult{static_cast<double>(hits) / kFlights,
                    static_cast<double>(kFlights - hits)};
}

}  // namespace

int main() {
  std::printf("E2: Example 2 deadline-hit rate (pick-up within %lld ms, "
              "service time %lld ms, %d flights per cell)\n\n",
              static_cast<long long>(kPickUpDeadline),
              static_cast<long long>(kServiceTimeMs), kFlights);
  const int controller_counts[] = {1, 2, 4};
  const util::TimeMs gaps[] = {60, 30, 15, 8};

  std::printf("%-22s", "mean arrival gap (ms)");
  for (auto gap : gaps) std::printf("%8lld", static_cast<long long>(gap));
  std::printf("\n");
  for (int controllers : controller_counts) {
    std::printf("%d controller%-9s", controllers,
                controllers == 1 ? "" : "s");
    for (auto gap : gaps) {
      auto cell = run_cell(controllers, gap);
      std::printf("%7.0f%%", cell.hit_rate * 100.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: hit rate falls as arrival gaps shrink below\n"
      "controllers * deadline/service capacity, and recovers as the pool\n"
      "grows — every miss was detected by the evaluation manager and\n"
      "compensated (the paper's exception-handling hook).\n");
  return 0;
}
