// Ablations of the two design choices DESIGN.md calls out:
//
//  A. Early failure detection (§2.5): failure is declared at the first
//     violated deadline vs. (ablated) only after every deadline lapsed.
//     Measured as failure-detection latency on an Example-1-shaped tree
//     whose first decisive deadline is much earlier than its largest.
//
//  B. Compensation staging (§2.6): created+persisted at send time (the
//     paper's crash-safe design) vs. (ablated) created on failure.
//     Measured as send-path cost and failure-path cost; the crash-safety
//     difference is functional, covered in tests, not timed here.
#include <benchmark/benchmark.h>

#include "cm/condition_builder.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"

namespace {

using namespace cmx;
using cm::DestBuilder;
using cm::SetBuilder;

// First decisive deadline at `first_ms`, largest deadline 10x later.
cm::ConditionPtr two_deadline_condition(util::TimeMs first_ms) {
  return SetBuilder()
      .pick_up_within(first_ms)
      .add(DestBuilder(mq::QueueAddress("QM", "A")).build())
      .add(DestBuilder(mq::QueueAddress("QM", "B"))
               .processing_within(first_ms * 10)
               .build())
      .build();
}

void failure_latency(benchmark::State& state, bool early) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("A").expect_ok("create");
  qm.create_queue("B").expect_ok("create");
  cm::ConditionalMessagingService service(qm);
  auto condition = two_deadline_condition(2);
  cm::SendOptions options;
  options.early_failure_detection = early;
  for (auto _ : state) {
    auto cm_id = service.send_message("x", *condition, options);
    cm_id.status().expect_ok("send");
    auto outcome = service.await_outcome(cm_id.value(), 60'000);
    outcome.status().expect_ok("outcome");
    state.PauseTiming();
    while (qm.get("A", 0).is_ok()) {
    }
    while (qm.get("B", 0).is_ok()) {
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FailureLatency_EarlyDetection(benchmark::State& state) {
  failure_latency(state, true);  // decides at the 2 ms deadline
}
BENCHMARK(BM_FailureLatency_EarlyDetection)->Unit(benchmark::kMillisecond);

void BM_FailureLatency_LateDetection(benchmark::State& state) {
  failure_latency(state, false);  // waits for the 20 ms deadline
}
BENCHMARK(BM_FailureLatency_LateDetection)->Unit(benchmark::kMillisecond);

void send_cost(benchmark::State& state, cm::CompensationStaging staging) {
  const int fanout = 4;
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  cm::SetBuilder builder;
  builder.pick_up_within(1);
  for (int i = 0; i < fanout; ++i) {
    const std::string q = "D" + std::to_string(i);
    qm.create_queue(q).expect_ok("create");
    builder.add(DestBuilder(mq::QueueAddress("QM", q)).build());
  }
  cm::ConditionalMessagingService service(
      qm, {.compensation_staging = staging});
  auto condition = builder.build();
  cm::SendOptions options;
  options.evaluation_timeout_ms = 2;
  int since_drain = 0;
  for (auto _ : state) {
    service.send_message("x", "undo", *condition, options)
        .status()
        .expect_ok("send");
    if (++since_drain >= 200) {
      state.PauseTiming();
      while (service.evaluation_manager().in_flight() > 0) {
        clock.sleep_ms(1);
      }
      for (int i = 0; i < fanout; ++i) {
        while (qm.get("D" + std::to_string(i), 0).is_ok()) {
        }
      }
      while (qm.get(cm::kOutcomeQueue, 0).is_ok()) {
      }
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SendCost_StagedAtSend(benchmark::State& state) {
  send_cost(state, cm::CompensationStaging::kAtSendTime);
}
BENCHMARK(BM_SendCost_StagedAtSend)->Iterations(2000);

void BM_SendCost_StagedOnFailure(benchmark::State& state) {
  send_cost(state, cm::CompensationStaging::kOnFailure);
}
BENCHMARK(BM_SendCost_StagedOnFailure)->Iterations(2000);

}  // namespace

BENCHMARK_MAIN();
