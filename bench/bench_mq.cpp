// E9 — reliable-messaging substrate characterization: put/get throughput
// by persistence class and store backend, priority handling, transacted
// batches, selector matching, and cross-queue-manager transfer.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "mq/network.hpp"
#include "mq/queue_manager.hpp"
#include "mq/selector.hpp"
#include "mq/session.hpp"
#include "util/clock.hpp"
#include "util/random.hpp"

namespace {

using namespace cmx;

mq::Message make_msg(int priority, mq::Persistence persistence) {
  mq::Message m("benchmark payload: forty-seven bytes of data....");
  m.set_priority(priority);
  m.set_persistence(persistence);
  return m;
}

void BM_PutGet_NonPersistent(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("Q").expect_ok("create");
  for (auto _ : state) {
    qm.put(mq::QueueAddress("", "Q"),
           make_msg(4, mq::Persistence::kNonPersistent))
        .expect_ok("put");
    benchmark::DoNotOptimize(qm.get("Q", 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PutGet_NonPersistent);

void BM_PutGet_PersistentMemoryStore(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock, std::make_unique<mq::MemoryStore>());
  qm.create_queue("Q").expect_ok("create");
  for (auto _ : state) {
    qm.put(mq::QueueAddress("", "Q"),
           make_msg(4, mq::Persistence::kPersistent))
        .expect_ok("put");
    benchmark::DoNotOptimize(qm.get("Q", 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PutGet_PersistentMemoryStore);

void BM_PutGet_PersistentFileStore(benchmark::State& state) {
  util::SystemClock clock;
  const auto path = std::filesystem::temp_directory_path() / "cmx_bench.log";
  std::filesystem::remove(path);
  {
    mq::QueueManager qm("QM", clock,
                        std::make_unique<mq::FileStore>(path.string()));
    qm.create_queue("Q").expect_ok("create");
    for (auto _ : state) {
      qm.put(mq::QueueAddress("", "Q"),
             make_msg(4, mq::Persistence::kPersistent))
          .expect_ok("put");
      benchmark::DoNotOptimize(qm.get("Q", 0));
    }
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PutGet_PersistentFileStore);

// Priority queues: put a burst of mixed priorities, drain in order.
void BM_PriorityBurst(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("Q").expect_ok("create");
  util::Rng rng(1);
  const int burst = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < burst; ++i) {
      qm.put(mq::QueueAddress("", "Q"),
             make_msg(static_cast<int>(rng.uniform(0, 9)),
                      mq::Persistence::kNonPersistent))
          .expect_ok("put");
    }
    for (int i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(qm.get("Q", 0));
    }
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_PriorityBurst)->Arg(8)->Arg(64)->Arg(512);

// Transacted batch commit: N puts + N gets per transaction.
void BM_TransactedBatch(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock, std::make_unique<mq::MemoryStore>());
  qm.create_queue("IN").expect_ok("create");
  qm.create_queue("OUT").expect_ok("create");
  const int batch = static_cast<int>(state.range(0));
  for (int i = 0; i < batch; ++i) {
    qm.put(mq::QueueAddress("", "IN"),
           make_msg(4, mq::Persistence::kPersistent))
        .expect_ok("seed");
  }
  for (auto _ : state) {
    auto session = qm.create_session(true);
    for (int i = 0; i < batch; ++i) {
      auto got = session->get("IN", 0);
      got.status().expect_ok("tx get");
      session->put(mq::QueueAddress("", "OUT"), std::move(got).value())
          .expect_ok("tx put");
    }
    session->commit().expect_ok("commit");
    // swap queues for the next iteration: move everything back
    auto back = qm.create_session(true);
    for (int i = 0; i < batch; ++i) {
      auto got = back->get("OUT", 0);
      got.status().expect_ok("back get");
      back->put(mq::QueueAddress("", "IN"), std::move(got).value())
          .expect_ok("back put");
    }
    back->commit().expect_ok("back commit");
  }
  state.SetItemsProcessed(state.iterations() * batch * 2);
}
BENCHMARK(BM_TransactedBatch)->Arg(1)->Arg(8)->Arg(64);

// Rollback cost: destructive get then restore.
void BM_TransactedRollback(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("Q").expect_ok("create");
  qm.put(mq::QueueAddress("", "Q"),
         make_msg(4, mq::Persistence::kNonPersistent))
      .expect_ok("seed");
  for (auto _ : state) {
    auto session = qm.create_session(true);
    benchmark::DoNotOptimize(session->get("Q", 0));
    session->rollback().expect_ok("rollback");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactedRollback);

// Selector matching cost against a queue where only 1 in `range` matches.
void BM_SelectorFilteredGet(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("Q").expect_ok("create");
  const int spread = static_cast<int>(state.range(0));
  auto selector = mq::Selector::parse("shard = 0 AND amount >= 10");
  selector.status().expect_ok("selector");
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < spread; ++i) {
      mq::Message m = make_msg(4, mq::Persistence::kNonPersistent);
      m.set_property("shard", std::int64_t{i % spread});
      m.set_property("amount", std::int64_t{100});
      qm.put(mq::QueueAddress("", "Q"), std::move(m)).expect_ok("put");
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(qm.get("Q", 0, &selector.value()));
    state.PauseTiming();
    while (qm.get("Q", 0).is_ok()) {
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SelectorFilteredGet)->Arg(4)->Arg(32)->Arg(256);

// Cross-queue-manager transfer through a channel (zero latency).
void BM_RemoteTransfer(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qma("QMA", clock);
  mq::QueueManager qmb("QMB", clock);
  qmb.create_queue("IN").expect_ok("create");
  mq::Network net;
  net.add(qma);
  net.add(qmb);
  for (auto _ : state) {
    qma.put(mq::QueueAddress("QMB", "IN"),
            make_msg(4, mq::Persistence::kNonPersistent))
        .expect_ok("put");
    benchmark::DoNotOptimize(qmb.get("IN", 10000));
  }
  net.shutdown();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteTransfer);

// Store recovery: cost of replaying a log with `backlog` retained messages.
void BM_Recovery(benchmark::State& state) {
  util::SystemClock clock;
  const int backlog = static_cast<int>(state.range(0));
  auto store = std::make_unique<mq::MemoryStore>();
  auto* raw = store.get();  // outlives the move: owned by the queue manager
  mq::QueueManager writer("QM", clock, std::move(store));
  writer.create_queue("Q").expect_ok("create");
  for (int i = 0; i < backlog; ++i) {
    writer.put(mq::QueueAddress("", "Q"),
               make_msg(4, mq::Persistence::kPersistent))
        .expect_ok("put");
  }
  for (auto _ : state) {
    auto records = raw->replay();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() * backlog);
}
BENCHMARK(BM_Recovery)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
