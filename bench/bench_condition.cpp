// E3 — condition object model (Figure 3) micro-characterization:
// construction, validation, deep clone, codec round-trip, and incremental
// evaluation cost as a function of tree width and depth.
#include <benchmark/benchmark.h>

#include "cm/condition_builder.hpp"
#include "cm/eval_state.hpp"

namespace {

using namespace cmx;
using cm::DestBuilder;
using cm::SetBuilder;

// A set with `width` leaves, pick-up on the set, processing on each leaf.
cm::ConditionPtr wide_tree(int width) {
  SetBuilder builder;
  builder.pick_up_within(10'000);
  for (int i = 0; i < width; ++i) {
    builder.add(DestBuilder(mq::QueueAddress("QM", "Q" + std::to_string(i)),
                            "user" + std::to_string(i))
                    .processing_within(20'000)
                    .build());
  }
  return builder.build();
}

// A chain of nested sets `depth` levels deep with one leaf per level.
cm::ConditionPtr deep_tree(int depth) {
  cm::ConditionPtr inner =
      DestBuilder(mq::QueueAddress("QM", "LEAF")).pick_up_within(1000).build();
  for (int level = 0; level < depth; ++level) {
    auto set = SetBuilder()
                   .pick_up_within(1000 + level)
                   .add(std::move(inner))
                   .add(DestBuilder(mq::QueueAddress(
                                        "QM", "Q" + std::to_string(level)))
                            .build())
                   .build();
    inner = std::move(set);
  }
  return inner;
}

void BM_Build(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wide_tree(width));
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_Build)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Validate(benchmark::State& state) {
  auto tree = wide_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->validate());
  }
}
BENCHMARK(BM_Validate)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Clone(benchmark::State& state) {
  auto tree = wide_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->clone());
  }
}
BENCHMARK(BM_Clone)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CodecRoundTrip(benchmark::State& state) {
  auto tree = wide_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto bytes = tree->encode();
    auto decoded = cm::Condition::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CodecRoundTrip)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Feed one ack and re-evaluate, at a given tree width: the per-ack cost
// the evaluation manager pays (§2.5).
void BM_AckApplyAndEvaluate(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto tree = wide_tree(width);
  int i = 0;
  auto eval = std::make_unique<cm::EvalState>("cm", *tree, 0);
  for (auto _ : state) {
    cm::AckRecord ack;
    ack.cm_id = "cm";
    ack.type = cm::AckType::kProcessing;
    ack.queue = mq::QueueAddress("QM", "Q" + std::to_string(i % width));
    ack.recipient_id = "user" + std::to_string(i % width);
    ack.read_ts = 1;
    ack.commit_ts = 2;
    ++i;
    eval->add_ack(ack);
    benchmark::DoNotOptimize(eval->evaluate(3));
    if (eval->decided()) {
      state.PauseTiming();
      eval = std::make_unique<cm::EvalState>("cm", *tree, 0);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AckApplyAndEvaluate)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_EvaluateDeepTree(benchmark::State& state) {
  auto tree = deep_tree(static_cast<int>(state.range(0)));
  cm::EvalState eval("cm", *tree, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(1));
  }
}
BENCHMARK(BM_EvaluateDeepTree)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_NextDeadline(benchmark::State& state) {
  auto tree = wide_tree(static_cast<int>(state.range(0)));
  cm::EvalState eval("cm", *tree, 0, 60'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.next_deadline(5));
  }
}
BENCHMARK(BM_NextDeadline)->Arg(4)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
