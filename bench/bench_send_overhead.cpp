// E4 — cost of the conditional messaging indirection (Figure 6):
//   * raw MOM put (the floor),
//   * conditional send (control properties + SLOG + staged compensation +
//     evaluation registration) as a function of fan-out N,
//   * full round-trip to a decided SUCCESS outcome, middleware vs. the
//     hand-rolled application baseline doing the same protocol.
//
// Expected shape (paper §4): the middleware's messages are the ones the
// application would have to create anyway, so middleware and app-managed
// round-trips are comparable, both paying ~O(N) over the raw put.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "baseline/app_managed.hpp"
#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"

namespace {

using namespace cmx;

std::vector<std::string> queue_names(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("DEST" + std::to_string(i));
  return names;
}

// --- floor: N raw puts ------------------------------------------------------

void BM_RawPut(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  for (const auto& q : queue_names(fanout)) {
    qm.create_queue(q).expect_ok("create");
  }
  const auto queues = queue_names(fanout);
  int since_drain = 0;
  for (auto _ : state) {
    for (const auto& q : queues) {
      qm.put(mq::QueueAddress("", q), mq::Message("payload"))
          .expect_ok("put");
    }
    if (++since_drain >= 500) {
      state.PauseTiming();
      for (const auto& q : queues) {
        while (qm.get(q, 0).is_ok()) {
        }
      }
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_RawPut)->Arg(1)->Arg(4)->Arg(16)->Iterations(3000);

// --- conditional send only (outcome resolves in the background) -----------

// Shared body for the metrics-off / metrics-on variants: with `metrics`
// the obs registry collects counters, latency histograms and lifecycle
// stages on every send, so the pair quantifies the enabled-path cost
// (the disabled path is a relaxed atomic load + branch per site).
void run_conditional_send(benchmark::State& state, bool metrics) {
  obs::set_enabled(metrics);
  if (metrics) obs::MetricsRegistry::instance().reset();
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  for (const auto& q : queue_names(fanout)) {
    qm.create_queue(q).expect_ok("create");
  }
  cm::ConditionalMessagingService service(qm);
  cm::SetBuilder builder;
  builder.pick_up_within(1);
  for (const auto& q : queue_names(fanout)) {
    builder.add(cm::DestBuilder(mq::QueueAddress("QM", q)).build());
  }
  auto condition = builder.build();
  cm::SendOptions options;
  options.evaluation_timeout_ms = 2;  // states self-clean quickly
  int since_drain = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service.send_message("payload", *condition, options));
    if (++since_drain >= 200) {
      // Steady state, not an ever-growing backlog: let the evaluation
      // manager retire the outstanding messages and sweep the queues the
      // failure path filled, outside the timed region.
      state.PauseTiming();
      while (service.evaluation_manager().in_flight() > 0) {
        clock.sleep_ms(1);
      }
      for (const auto& q : queue_names(fanout)) {
        while (qm.get(q, 0).is_ok()) {
        }
      }
      while (qm.get(cm::kOutcomeQueue, 0).is_ok()) {
      }
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * fanout);
  obs::set_enabled(false);
}

void BM_ConditionalSend(benchmark::State& state) {
  run_conditional_send(state, /*metrics=*/false);
}
BENCHMARK(BM_ConditionalSend)->Arg(1)->Arg(4)->Arg(16)->Iterations(3000);

void BM_ConditionalSendMetrics(benchmark::State& state) {
  run_conditional_send(state, /*metrics=*/true);
}
BENCHMARK(BM_ConditionalSendMetrics)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(3000);

// --- full round trip: send -> receivers ack -> SUCCESS outcome ------------

class ReaderPool {
 public:
  ReaderPool(mq::QueueManager& qm, const std::vector<std::string>& queues,
             bool conditional) {
    for (const auto& q : queues) {
      threads_.emplace_back([&qm, q, conditional, this] {
        cm::ConditionalReceiver cond_rx(qm, "reader-" + q);
        baseline::AppManagedReceiver app_rx(qm);
        while (!stop_.load()) {
          if (conditional) {
            cond_rx.read_message(q, 20);
          } else {
            app_rx.read_and_ack(q, 20);
          }
        }
      });
    }
  }
  ~ReaderPool() {
    stop_.store(true);
    for (auto& t : threads_) t.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

void BM_ConditionalRoundTrip(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  const auto queues = queue_names(fanout);
  for (const auto& q : queues) qm.create_queue(q).expect_ok("create");
  cm::ConditionalMessagingService service(qm);
  cm::SetBuilder builder;
  builder.pick_up_within(60'000);
  for (const auto& q : queues) {
    builder.add(cm::DestBuilder(mq::QueueAddress("QM", q)).build());
  }
  auto condition = builder.build();
  ReaderPool readers(qm, queues, /*conditional=*/true);
  for (auto _ : state) {
    auto cm_id = service.send_message("payload", *condition);
    cm_id.status().expect_ok("send");
    auto outcome = service.await_outcome(cm_id.value(), 60'000);
    outcome.status().expect_ok("outcome");
    if (outcome.value().outcome != cm::Outcome::kSuccess) {
      state.SkipWithError("unexpected failure outcome");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionalRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_AppManagedRoundTrip(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  const auto queues = queue_names(fanout);
  std::vector<mq::QueueAddress> dests;
  for (const auto& q : queues) {
    qm.create_queue(q).expect_ok("create");
    dests.emplace_back("", q);
  }
  baseline::AppManagedSender sender(qm);
  ReaderPool readers(qm, queues, /*conditional=*/false);
  for (auto _ : state) {
    auto id = sender.send_all_must_read("payload", dests, 60'000);
    id.status().expect_ok("send");
    auto outcome = sender.await_outcome(id.value());
    outcome.status().expect_ok("outcome");
    if (!outcome.value().success) {
      state.SkipWithError("unexpected baseline failure");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppManagedRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// --- machine-readable A/B: metrics off vs. on ------------------------------

// Self-timed conditional-send throughput (fanout 4), identical loop for
// both arms; drains happen outside the timed bursts, mirroring the
// google-benchmark variants above.
double measure_sends_per_sec(bool metrics, int fanout, int iters) {
  obs::set_enabled(metrics);
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  const auto queues = queue_names(fanout);
  for (const auto& q : queues) qm.create_queue(q).expect_ok("create");
  cm::ConditionalMessagingService service(qm);
  cm::SetBuilder builder;
  builder.pick_up_within(1);
  for (const auto& q : queues) {
    builder.add(cm::DestBuilder(mq::QueueAddress("QM", q)).build());
  }
  auto condition = builder.build();
  cm::SendOptions options;
  options.evaluation_timeout_ms = 2;

  auto drain = [&] {
    while (service.evaluation_manager().in_flight() > 0) {
      clock.sleep_ms(1);
    }
    for (const auto& q : queues) {
      while (qm.get(q, 0).is_ok()) {
      }
    }
    while (qm.get(cm::kOutcomeQueue, 0).is_ok()) {
    }
  };

  for (int i = 0; i < 200; ++i) {  // warm-up: fault in paths and statics
    service.send_message("payload", *condition, options)
        .status()
        .expect_ok("send");
  }
  drain();

  std::uint64_t timed_ns = 0;
  for (int done = 0; done < iters;) {
    const int burst = std::min(200, iters - done);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < burst; ++i) {
      service.send_message("payload", *condition, options)
          .status()
          .expect_ok("send");
    }
    timed_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    done += burst;
    drain();
  }
  obs::set_enabled(false);
  return static_cast<double>(iters) / (static_cast<double>(timed_ns) * 1e-9);
}

void write_bench_json() {
  constexpr int kFanout = 4;
  constexpr int kIters = 2000;
  // Best-of-3 per arm: the send path shares the process with background
  // evaluation threads, so single-shot wall-clock numbers are noisy.
  double off = 0.0, on = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    obs::MetricsRegistry::instance().reset();
    off = std::max(off, measure_sends_per_sec(false, kFanout, kIters));
    obs::MetricsRegistry::instance().reset();
    on = std::max(on, measure_sends_per_sec(true, kFanout, kIters));
  }
  obs::set_enabled(true);  // export reflects the enabled arm's registry
  const std::string metrics_json = obs::export_json();
  obs::set_enabled(false);
  const double overhead_pct = (off - on) / off * 100.0;

  const char* path = "BENCH_send_overhead.json";
  std::ofstream out(path);
  out << "{\"bench\": \"send_overhead\", \"fanout\": " << kFanout
      << ", \"iterations\": " << kIters
      << ", \"metrics_disabled_sends_per_sec\": " << off
      << ", \"metrics_enabled_sends_per_sec\": " << on
      << ", \"enabled_overhead_pct\": " << overhead_pct
      << ", \"metrics\": " << metrics_json << "}\n";
  std::cout << "BENCH_send_overhead.json: disabled=" << off
            << " sends/s enabled=" << on << " sends/s overhead="
            << overhead_pct << "%\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_json();
  return 0;
}
