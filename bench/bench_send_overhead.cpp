// E4 — cost of the conditional messaging indirection (Figure 6):
//   * raw MOM put (the floor),
//   * conditional send (control properties + SLOG + staged compensation +
//     evaluation registration) as a function of fan-out N,
//   * full round-trip to a decided SUCCESS outcome, middleware vs. the
//     hand-rolled application baseline doing the same protocol.
//
// Expected shape (paper §4): the middleware's messages are the ones the
// application would have to create anyway, so middleware and app-managed
// round-trips are comparable, both paying ~O(N) over the raw put.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baseline/app_managed.hpp"
#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"

namespace {

using namespace cmx;

std::vector<std::string> queue_names(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("DEST" + std::to_string(i));
  return names;
}

// --- floor: N raw puts ------------------------------------------------------

void BM_RawPut(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  for (const auto& q : queue_names(fanout)) {
    qm.create_queue(q).expect_ok("create");
  }
  const auto queues = queue_names(fanout);
  int since_drain = 0;
  for (auto _ : state) {
    for (const auto& q : queues) {
      qm.put(mq::QueueAddress("", q), mq::Message("payload"))
          .expect_ok("put");
    }
    if (++since_drain >= 500) {
      state.PauseTiming();
      for (const auto& q : queues) {
        while (qm.get(q, 0).is_ok()) {
        }
      }
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_RawPut)->Arg(1)->Arg(4)->Arg(16)->Iterations(3000);

// --- conditional send only (outcome resolves in the background) -----------

void BM_ConditionalSend(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  for (const auto& q : queue_names(fanout)) {
    qm.create_queue(q).expect_ok("create");
  }
  cm::ConditionalMessagingService service(qm);
  cm::SetBuilder builder;
  builder.pick_up_within(1);
  for (const auto& q : queue_names(fanout)) {
    builder.add(cm::DestBuilder(mq::QueueAddress("QM", q)).build());
  }
  auto condition = builder.build();
  cm::SendOptions options;
  options.evaluation_timeout_ms = 2;  // states self-clean quickly
  int since_drain = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service.send_message("payload", *condition, options));
    if (++since_drain >= 200) {
      // Steady state, not an ever-growing backlog: let the evaluation
      // manager retire the outstanding messages and sweep the queues the
      // failure path filled, outside the timed region.
      state.PauseTiming();
      while (service.evaluation_manager().in_flight() > 0) {
        clock.sleep_ms(1);
      }
      for (const auto& q : queue_names(fanout)) {
        while (qm.get(q, 0).is_ok()) {
        }
      }
      while (qm.get(cm::kOutcomeQueue, 0).is_ok()) {
      }
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_ConditionalSend)->Arg(1)->Arg(4)->Arg(16)->Iterations(3000);

// --- full round trip: send -> receivers ack -> SUCCESS outcome ------------

class ReaderPool {
 public:
  ReaderPool(mq::QueueManager& qm, const std::vector<std::string>& queues,
             bool conditional) {
    for (const auto& q : queues) {
      threads_.emplace_back([&qm, q, conditional, this] {
        cm::ConditionalReceiver cond_rx(qm, "reader-" + q);
        baseline::AppManagedReceiver app_rx(qm);
        while (!stop_.load()) {
          if (conditional) {
            cond_rx.read_message(q, 20);
          } else {
            app_rx.read_and_ack(q, 20);
          }
        }
      });
    }
  }
  ~ReaderPool() {
    stop_.store(true);
    for (auto& t : threads_) t.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

void BM_ConditionalRoundTrip(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  const auto queues = queue_names(fanout);
  for (const auto& q : queues) qm.create_queue(q).expect_ok("create");
  cm::ConditionalMessagingService service(qm);
  cm::SetBuilder builder;
  builder.pick_up_within(60'000);
  for (const auto& q : queues) {
    builder.add(cm::DestBuilder(mq::QueueAddress("QM", q)).build());
  }
  auto condition = builder.build();
  ReaderPool readers(qm, queues, /*conditional=*/true);
  for (auto _ : state) {
    auto cm_id = service.send_message("payload", *condition);
    cm_id.status().expect_ok("send");
    auto outcome = service.await_outcome(cm_id.value(), 60'000);
    outcome.status().expect_ok("outcome");
    if (outcome.value().outcome != cm::Outcome::kSuccess) {
      state.SkipWithError("unexpected failure outcome");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionalRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_AppManagedRoundTrip(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  const auto queues = queue_names(fanout);
  std::vector<mq::QueueAddress> dests;
  for (const auto& q : queues) {
    qm.create_queue(q).expect_ok("create");
    dests.emplace_back("", q);
  }
  baseline::AppManagedSender sender(qm);
  ReaderPool readers(qm, queues, /*conditional=*/false);
  for (auto _ : state) {
    auto id = sender.send_all_must_read("payload", dests, 60'000);
    id.status().expect_ok("send");
    auto outcome = sender.await_outcome(id.value());
    outcome.status().expect_ok("outcome");
    if (!outcome.value().success) {
      state.SkipWithError("unexpected baseline failure");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AppManagedRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
