// Multi-factor workload study over the conditional messaging system,
// using the sim harness: success rate and outcome latency as functions of
// offered load, pool size, transactional vs. plain consumption, and
// receiver rollback rate. The qualitative claims under test:
//   * misses are detected (success rate = what the pool can actually
//     sustain, never silent losses),
//   * rollbacks delay but do not break processing conditions (redelivery
//     until the deadline),
//   * transactional consumption costs throughput but upgrades the
//     guarantee from "read" to "processed".
#include <cstdio>

#include "sim/workload.hpp"

using namespace cmx;

namespace {

void sweep_load() {
  std::printf("W1: success rate vs offered load (pick-up within 200ms, "
              "service 15-30ms)\n");
  std::printf("%-26s", "mean arrival gap (ms)");
  const double gaps[] = {40, 20, 10, 5};
  for (double gap : gaps) std::printf("%10.0f", gap);
  std::printf("\n");
  for (int pool : {1, 2, 4}) {
    std::printf("%d receiver%-13s", pool, pool == 1 ? "" : "s");
    for (double gap : gaps) {
      sim::WorkloadSpec spec;
      spec.messages = 50;
      spec.mean_interarrival_ms = gap;
      spec.pick_up_deadline_ms = 200;
      spec.seed = 42;
      sim::ReceiverProfile profile;
      profile.count = pool;
      profile.service_time_min_ms = 15;
      profile.service_time_max_ms = 30;
      auto report = sim::run_workload(spec, profile);
      std::printf("%9.0f%%", report.success_rate * 100.0);
    }
    std::printf("\n");
  }
}

void sweep_rollbacks() {
  std::printf("\nW2: transactional processing under rollbacks "
              "(processing within 400ms, 2 receivers)\n");
  std::printf("%-26s%10s%12s%12s\n", "rollback probability", "success",
              "p95 (ms)", "rollbacks");
  for (double rollback : {0.0, 0.2, 0.5, 0.8}) {
    sim::WorkloadSpec spec;
    spec.messages = 40;
    spec.mean_interarrival_ms = 30;
    spec.pick_up_deadline_ms = 400;
    spec.processing_deadline_ms = 400;
    spec.seed = 7;
    sim::ReceiverProfile profile;
    profile.count = 2;
    profile.transactional = true;
    profile.rollback_probability = rollback;
    auto report = sim::run_workload(spec, profile);
    std::printf("%-26.1f%9.0f%%%11lld%12llu\n", rollback,
                report.success_rate * 100.0,
                static_cast<long long>(report.p95_outcome_latency_ms),
                static_cast<unsigned long long>(report.rollbacks));
  }
}

void plain_vs_transactional() {
  std::printf("\nW3: plain read vs transactional processing "
              "(same load, 2 receivers)\n");
  for (bool transactional : {false, true}) {
    sim::WorkloadSpec spec;
    spec.messages = 40;
    spec.mean_interarrival_ms = 25;
    spec.pick_up_deadline_ms = 300;
    if (transactional) spec.processing_deadline_ms = 300;
    spec.seed = 11;
    sim::ReceiverProfile profile;
    profile.count = 2;
    profile.transactional = transactional;
    auto report = sim::run_workload(spec, profile);
    std::printf("  %-14s %s\n", transactional ? "transactional" : "plain",
                report.to_string().c_str());
  }
}

}  // namespace

int main() {
  sweep_load();
  sweep_rollbacks();
  plain_vs_transactional();
  std::printf(
      "\nexpected shapes: W1 mirrors the Example-2 surface; W2 success\n"
      "degrades gracefully with rollback rate (redelivery burns deadline\n"
      "budget) while every miss is compensated; W3 transactional runs\n"
      "trade latency for the processed-not-just-read guarantee.\n");
  return 0;
}
