// E10 — conditional messaging vs. the Coyote-style single-server timeout
// exchange (§4.1 related work): on the one workload Coyote handles (one
// server, one timeout), both should cost about the same number of
// messages; conditional messaging generalizes beyond it without new code.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "baseline/coyote.hpp"
#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/queue_manager.hpp"

namespace {

using namespace cmx;

void BM_CoyoteCall(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("SERVER.Q").expect_ok("create");
  baseline::CoyoteClient client(qm);
  baseline::CoyoteServer server(qm);
  std::atomic<bool> stop{false};
  std::thread server_thread([&] {
    while (!stop.load()) {
      server.serve_one("SERVER.Q", 20);
    }
  });
  for (auto _ : state) {
    auto result = client.call(mq::QueueAddress("", "SERVER.Q"), "req", 60'000);
    result.status().expect_ok("call");
    if (result.value() != baseline::CoyoteResult::kAcknowledged) {
      state.SkipWithError("unexpected cancellation");
      break;
    }
  }
  stop.store(true);
  server_thread.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoyoteCall)->Unit(benchmark::kMicrosecond);

void BM_ConditionalSingleServer(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("SERVER.Q").expect_ok("create");
  cm::ConditionalMessagingService service(qm);
  auto condition = cm::DestBuilder(mq::QueueAddress("QM", "SERVER.Q"))
                       .pick_up_within(60'000)
                       .build();
  std::atomic<bool> stop{false};
  std::thread server_thread([&] {
    cm::ConditionalReceiver rx(qm, "server");
    while (!stop.load()) {
      rx.read_message("SERVER.Q", 20);
    }
  });
  for (auto _ : state) {
    auto cm_id = service.send_message("req", *condition);
    cm_id.status().expect_ok("send");
    auto outcome = service.await_outcome(cm_id.value(), 60'000);
    outcome.status().expect_ok("outcome");
    if (outcome.value().outcome != cm::Outcome::kSuccess) {
      state.SkipWithError("unexpected failure");
      break;
    }
  }
  stop.store(true);
  server_thread.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionalSingleServer)->Unit(benchmark::kMicrosecond);

// Failure path comparison: deadline lapses, the protocol must emit its
// "undo" (Coyote: cancellation; conditional messaging: compensation).
void BM_CoyoteTimeoutPath(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("SERVER.Q").expect_ok("create");
  baseline::CoyoteClient client(qm);
  for (auto _ : state) {
    auto result = client.call(mq::QueueAddress("", "SERVER.Q"), "req", 1);
    result.status().expect_ok("call");
    state.PauseTiming();
    while (qm.get("SERVER.Q", 0).is_ok()) {
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoyoteTimeoutPath)->Unit(benchmark::kMicrosecond);

void BM_ConditionalTimeoutPath(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("SERVER.Q").expect_ok("create");
  cm::ConditionalMessagingService service(qm);
  auto condition = cm::DestBuilder(mq::QueueAddress("QM", "SERVER.Q"))
                       .pick_up_within(1)
                       .build();
  for (auto _ : state) {
    auto cm_id = service.send_message("req", *condition);
    cm_id.status().expect_ok("send");
    auto outcome = service.await_outcome(cm_id.value(), 60'000);
    outcome.status().expect_ok("outcome");
    state.PauseTiming();
    while (qm.get("SERVER.Q", 0).is_ok()) {
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionalTimeoutPath)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
