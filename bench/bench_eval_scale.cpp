// Evaluation-engine A/B at scale: the seed-faithful scan engine (one
// shard, one ack per drain, full evaluate-all + earliest-deadline scan
// per wakeup; EvaluationOptions::scan_engine) vs. the sharded
// dirty-set/deadline-heap engine, at 1k / 10k / 100k in-flight
// conditional messages.
//
// The load is a closed loop: a feeder acks one pool message at a time,
// keeping a small window of undecided acks outstanding, for a bounded
// wall-clock budget. The window matters — flooding every ack at once
// would let the scan engine amortize its O(N) pass over an arbitrarily
// large drained batch and hide exactly the per-event cost this bench
// exists to show. Reported per arm: decisions/sec and the p99 of
// ack-put -> outcome-callback latency.
//
// The headline number — and the acceptance gate — is 100k in-flight,
// where the sharded engine must deliver >= 5x the scan engine's
// decisions/sec.
//
// Second grid (DESIGN.md §12): condition-tree size. One EvalState with a
// set of L named leaves is driven to its decision one ack at a time, with
// an evaluate() after every ack exactly as the dirty-set engine does. The
// interpretive walker re-walks the whole tree per evaluate (O(L) per ack,
// O(L^2) per decision); the compiled engine decrements residual counts
// (O(depth) per ack). Gate: compiled acks/sec at 1000 leaves stays within
// 2x of its 10-leaf figure, while interpretive degrades roughly linearly.
//
// Writes BENCH_eval_scale.json into the working directory (skipped with
// --smoke, which runs one tiny sharded arm as a CI liveness check plus a
// 1000-leaf compiled-vs-interpretive arm asserting compiled >= interpretive).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/evaluation_manager.hpp"
#include "mq/queue_manager.hpp"

namespace {

using namespace cmx;

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ArmResult {
  const char* engine;
  int in_flight;
  std::uint64_t decided = 0;
  double duration_s = 0.0;
  double decisions_per_sec = 0.0;
  std::int64_t p99_us = 0;
};

ArmResult run_arm(const char* engine_name, const cm::EvaluationOptions& opts,
                  int in_flight, double budget_s, int window) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock, std::make_unique<mq::NullStore>());

  // Ack-put instants and per-message latencies, indexed by the number in
  // the cm id ("cm-<i>"). Writes land on distinct indices; publication is
  // via the decided counter below.
  std::vector<std::int64_t> ack_put_us(in_flight, 0);
  std::vector<std::int64_t> latency_us(in_flight, -1);

  std::atomic<std::uint64_t> decided{0};
  std::mutex window_mu;
  std::condition_variable window_cv;
  int outstanding = 0;

  cm::EvaluationManager eval(
      qm,
      [&](const cm::OutcomeRecord& record, bool) {
        const int idx = std::atoi(record.cm_id.c_str() + 3);
        latency_us[idx] = now_us() - ack_put_us[idx];
        decided.fetch_add(1, std::memory_order_release);
        {
          std::lock_guard<std::mutex> lk(window_mu);
          --outstanding;
        }
        window_cv.notify_one();
      },
      opts);

  // Pool: `in_flight` pending messages on one far-off deadline (an hour —
  // present in the deadline bookkeeping, never firing mid-run).
  const mq::QueueAddress dest("QM", "R");
  const auto cond = cm::DestBuilder(dest).pick_up_within(3600 * 1000).build();
  const util::TimeMs send_ts = clock.now_ms();
  for (int i = 0; i < in_flight; ++i) {
    eval.register_message(std::make_unique<cm::EvalState>(
                              "cm-" + std::to_string(i), *cond, send_ts),
                          /*deferred=*/false);
  }

  // Closed-loop feeder: at most `window` undecided acks in the engine.
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(budget_s);
  int fed = 0;
  while (fed < in_flight) {
    {
      std::unique_lock<std::mutex> lk(window_mu);
      if (!window_cv.wait_until(lk, deadline,
                                [&] { return outstanding < window; })) {
        break;  // budget exhausted with the window still full
      }
      ++outstanding;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    cm::AckRecord ack;
    ack.cm_id = "cm-" + std::to_string(fed);
    ack.type = cm::AckType::kRead;
    ack.queue = dest;
    ack.read_ts = clock.now_ms();
    ack_put_us[fed] = now_us();
    qm.put_local(cm::kAckQueue, ack.to_message()).expect_ok("put ack");
    ++fed;
  }
  // Let in-flight acks finish (bounded), then freeze the engine so the
  // latency array is safe to read.
  {
    std::unique_lock<std::mutex> lk(window_mu);
    window_cv.wait_until(lk, deadline + std::chrono::seconds(2), [&] {
      return decided.load(std::memory_order_acquire) >=
             static_cast<std::uint64_t>(fed);
    });
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  eval.stop();

  ArmResult r;
  r.engine = engine_name;
  r.in_flight = in_flight;
  r.decided = decided.load();
  r.duration_s = elapsed;
  r.decisions_per_sec = elapsed > 0.0 ? r.decided / elapsed : 0.0;
  std::vector<std::int64_t> done;
  done.reserve(r.decided);
  for (const std::int64_t l : latency_us) {
    if (l >= 0) done.push_back(l);
  }
  if (!done.empty()) {
    std::sort(done.begin(), done.end());
    r.p99_us = done[static_cast<std::size_t>(0.99 * (done.size() - 1))];
  }
  return r;
}

// ---- condition-tree scale: compiled vs interpretive per-ack cost ----------

struct TreeArmResult {
  const char* engine;
  int leaves;
  std::uint64_t acks = 0;
  std::uint64_t decisions = 0;
  double duration_s = 0.0;
  double acks_per_sec = 0.0;
  double decisions_per_sec = 0.0;
};

TreeArmResult run_tree_arm(cm::EvalEngine engine, const char* engine_name,
                           int leaves, double budget_s) {
  const mq::QueueAddress dest("QM", "R");
  cm::SetBuilder set;
  for (int i = 0; i < leaves; ++i) {
    set.add(cm::DestBuilder(dest, "r" + std::to_string(i)).build());
  }
  const auto cond = set.pick_up_within(3600 * 1000).build();

  // Pre-built acks so the measured loop is add_ack + evaluate only.
  std::vector<cm::AckRecord> acks(leaves);
  for (int i = 0; i < leaves; ++i) {
    acks[i].type = cm::AckType::kRead;
    acks[i].queue = dest;
    acks[i].recipient_id = "r" + std::to_string(i);
    acks[i].read_ts = 1;
  }
  cm::EvalStateOptions opts;
  opts.engine = engine;

  TreeArmResult r;
  r.engine = engine_name;
  r.leaves = leaves;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(budget_s);
  while (std::chrono::steady_clock::now() < deadline) {
    cm::EvalState state("cm-0", *cond, /*send_ts=*/0, 0, opts);
    for (int i = 0; i < leaves; ++i) {
      acks[i].cm_id = state.cm_id();
      state.add_ack(acks[i]);
      // Mirror the engine's dirty-set behaviour: re-evaluate per ack.
      state.evaluate(2);
    }
    if (!state.decided()) {
      std::cerr << "tree arm failed to decide (" << engine_name << ", "
                << leaves << " leaves)\n";
      std::exit(1);
    }
    r.acks += static_cast<std::uint64_t>(leaves);
    ++r.decisions;
  }
  r.duration_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.acks_per_sec = r.duration_s > 0.0 ? r.acks / r.duration_s : 0.0;
  r.decisions_per_sec = r.duration_s > 0.0 ? r.decisions / r.duration_s : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  constexpr int kWindow = 64;

  cm::EvaluationOptions scan_opts;
  scan_opts.shard_count = 1;
  scan_opts.max_batch = 1;
  scan_opts.scan_engine = true;
  const cm::EvaluationOptions sharded_opts;  // defaults: 8 shards, batch 256

  if (smoke) {
    const auto r = run_arm("sharded", sharded_opts, 1000, 2.0, kWindow);
    std::cout << "smoke: " << r.decided << " decisions in " << r.duration_s
              << "s (" << static_cast<std::uint64_t>(r.decisions_per_sec)
              << "/s, p99 " << r.p99_us << "us)\n";
    // Liveness gate: the engine must actually decide the tiny pool.
    if (r.decided != 1000) return 1;
    // Compiled-engine gate: at 1000 leaves the incremental engine must be
    // at least as fast per ack as the interpretive re-walk.
    const auto compiled =
        run_tree_arm(cm::EvalEngine::kCompiled, "compiled", 1000, 0.5);
    const auto interp =
        run_tree_arm(cm::EvalEngine::kInterpretive, "interpretive", 1000, 0.5);
    std::cout << "smoke tree 1000 leaves: compiled "
              << static_cast<std::uint64_t>(compiled.acks_per_sec)
              << " acks/s vs interpretive "
              << static_cast<std::uint64_t>(interp.acks_per_sec)
              << " acks/s\n";
    return compiled.acks_per_sec >= interp.acks_per_sec ? 0 : 1;
  }

  std::vector<ArmResult> results;
  for (const int in_flight : {1000, 10000, 100000}) {
    for (const bool sharded : {false, true}) {
      const auto r = run_arm(sharded ? "sharded" : "scan",
                             sharded ? sharded_opts : scan_opts, in_flight,
                             /*budget_s=*/2.0, kWindow);
      std::cout << r.engine << " in_flight=" << r.in_flight << ": "
                << static_cast<std::uint64_t>(r.decisions_per_sec)
                << " decisions/s (" << r.decided << " in " << r.duration_s
                << "s, p99 " << r.p99_us << "us)\n";
      results.push_back(r);
    }
  }

  double scan_100k = 0.0, sharded_100k = 0.0;
  for (const auto& r : results) {
    if (r.in_flight == 100000) {
      (std::strcmp(r.engine, "sharded") == 0 ? sharded_100k : scan_100k) =
          r.decisions_per_sec;
    }
  }
  const double speedup = scan_100k > 0.0 ? sharded_100k / scan_100k : 0.0;

  std::vector<TreeArmResult> tree_results;
  for (const int leaves : {10, 100, 1000}) {
    for (const bool compiled : {false, true}) {
      const auto r = run_tree_arm(
          compiled ? cm::EvalEngine::kCompiled : cm::EvalEngine::kInterpretive,
          compiled ? "compiled" : "interpretive", leaves, /*budget_s=*/1.0);
      std::cout << "tree " << r.engine << " leaves=" << r.leaves << ": "
                << static_cast<std::uint64_t>(r.acks_per_sec) << " acks/s, "
                << static_cast<std::uint64_t>(r.decisions_per_sec)
                << " decisions/s\n";
      tree_results.push_back(r);
    }
  }
  auto tree_rate = [&](const char* engine, int leaves) {
    for (const auto& r : tree_results) {
      if (r.leaves == leaves && std::strcmp(r.engine, engine) == 0) {
        return r.acks_per_sec;
      }
    }
    return 0.0;
  };
  // Flatness: throughput at 1000 leaves relative to 10 leaves (1.0 = flat).
  const double compiled_flatness =
      tree_rate("compiled", 10) > 0.0
          ? tree_rate("compiled", 1000) / tree_rate("compiled", 10)
          : 0.0;
  const double interp_flatness =
      tree_rate("interpretive", 10) > 0.0
          ? tree_rate("interpretive", 1000) / tree_rate("interpretive", 10)
          : 0.0;

  std::ofstream out("BENCH_eval_scale.json");
  out << "{\"bench\": \"eval_scale\", \"window\": " << kWindow
      << ", \"arms\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) out << ", ";
    out << "{\"engine\": \"" << r.engine << "\", \"in_flight\": "
        << r.in_flight << ", \"decisions_per_sec\": " << r.decisions_per_sec
        << ", \"ack_to_decision_p99_us\": " << r.p99_us << ", \"decided\": "
        << r.decided << ", \"duration_s\": " << r.duration_s << "}";
  }
  out << "], \"headline\": {\"in_flight\": 100000, "
      << "\"scan_decisions_per_sec\": " << scan_100k
      << ", \"sharded_decisions_per_sec\": " << sharded_100k
      << ", \"speedup\": " << speedup << "}, \"tree_arms\": [";
  for (std::size_t i = 0; i < tree_results.size(); ++i) {
    const auto& r = tree_results[i];
    if (i > 0) out << ", ";
    out << "{\"engine\": \"" << r.engine << "\", \"leaves\": " << r.leaves
        << ", \"acks_per_sec\": " << r.acks_per_sec
        << ", \"decisions_per_sec\": " << r.decisions_per_sec << "}";
  }
  // compiled_flatness_10_to_1000 >= 0.5 is the PR 10 acceptance gate:
  // ack throughput within 2x of flat while the interpretive walker degrades.
  out << "], \"tree_headline\": {\"compiled_flatness_10_to_1000\": "
      << compiled_flatness << ", \"interpretive_flatness_10_to_1000\": "
      << interp_flatness << "}}\n";
  std::cout << "BENCH_eval_scale.json: 100k in-flight speedup = " << speedup
            << "x; tree flatness 10->1000 leaves: compiled "
            << compiled_flatness << ", interpretive " << interp_flatness
            << "\n";
  return 0;
}
