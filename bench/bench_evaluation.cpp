// E7 — evaluation manager (§2.5, Figure 9): acknowledgment processing
// throughput as a function of the number of in-flight conditional
// messages, and the latency from final ack to decided outcome.
#include <benchmark/benchmark.h>

#include "cm/condition_builder.hpp"
#include "cm/control.hpp"
#include "cm/eval_state.hpp"
#include "cm/evaluation_manager.hpp"
#include "mq/queue_manager.hpp"
#include "util/id.hpp"

namespace {

using namespace cmx;

// A condition over two queues that a single ack can never decide, so the
// state stays in flight while acks stream through it.
cm::ConditionPtr undecidable_condition() {
  return cm::SetBuilder()
      .pick_up_within(10LL * 60 * 60 * 1000)
      .add(cm::DestBuilder(mq::QueueAddress("QM", "QA")).build())
      .add(cm::DestBuilder(mq::QueueAddress("QM", "QB")).build())
      .build();
}

// Ack throughput with `range` undecided messages registered: measures the
// demultiplex + apply + re-evaluate pipeline.
void BM_AckThroughput(benchmark::State& state) {
  const int in_flight = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  cm::EvaluationManager manager(qm, {});
  auto condition = undecidable_condition();
  std::vector<std::string> ids;
  for (int i = 0; i < in_flight; ++i) {
    auto id = util::generate_id("cm");
    ids.push_back(id);
    manager.register_message(
        std::make_unique<cm::EvalState>(id, *condition, clock.now_ms()),
        false);
  }
  std::uint64_t sent = 0;
  int target = 0;
  for (auto _ : state) {
    cm::AckRecord ack;
    ack.cm_id = ids[target++ % ids.size()];
    ack.type = cm::AckType::kRead;
    ack.queue = mq::QueueAddress("QM", "QA");
    ack.recipient_id = "reader";
    ack.read_ts = clock.now_ms();
    qm.put_local(cm::kAckQueue, ack.to_message()).expect_ok("put ack");
    ++sent;
  }
  // wait for the background thread to chew through everything
  while (manager.stats().acks_processed < sent) {
    clock.sleep_ms(1);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["in_flight"] = in_flight;
}
BENCHMARK(BM_AckThroughput)->Arg(1)->Arg(16)->Arg(128)->Arg(1024)
    ->Iterations(5000);

// Final-ack-to-decision latency: one message, its single decisive ack.
void BM_DecisionLatency(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  cm::EvaluationManager manager(qm, {});
  auto condition = cm::DestBuilder(mq::QueueAddress("QM", "QA"))
                       .pick_up_within(10LL * 60 * 60 * 1000)
                       .build();
  for (auto _ : state) {
    state.PauseTiming();
    const auto id = util::generate_id("cm");
    manager.register_message(
        std::make_unique<cm::EvalState>(id, *condition, clock.now_ms()),
        false);
    cm::AckRecord ack;
    ack.cm_id = id;
    ack.type = cm::AckType::kRead;
    ack.queue = mq::QueueAddress("QM", "QA");
    ack.read_ts = clock.now_ms();
    state.ResumeTiming();
    qm.put_local(cm::kAckQueue, ack.to_message()).expect_ok("put ack");
    if (!manager.await_decided(id, 10'000)) {
      state.SkipWithError("decision did not arrive");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionLatency)->Unit(benchmark::kMicrosecond);

// Deadline-driven decisions: how fast the manager retires a batch of
// messages whose deadlines all lapse (the failure path of Example 2).
void BM_DeadlineSweep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  auto condition = cm::DestBuilder(mq::QueueAddress("QM", "QA"))
                       .pick_up_within(1)
                       .build();
  for (auto _ : state) {
    state.PauseTiming();
    cm::EvaluationManager manager(qm, {});
    state.ResumeTiming();
    for (int i = 0; i < batch; ++i) {
      manager.register_message(
          std::make_unique<cm::EvalState>(util::generate_id("cm"),
                                          *condition, clock.now_ms()),
          false);
    }
    while (manager.stats().decided_failure <
           static_cast<std::uint64_t>(batch)) {
      clock.sleep_ms(1);
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DeadlineSweep)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
