// E6 — compensation machinery (§2.6, Figure 8): staging cost at send
// time, release cost on failure, receiver-side annihilation
// (original + compensation cancel out) vs. delivered compensation
// (original already consumed — RLOG lookup + delivery).
#include <benchmark/benchmark.h>

#include "cm/compensation_manager.hpp"
#include "cm/control.hpp"
#include "cm/receiver.hpp"
#include "mq/queue_manager.hpp"
#include "util/id.hpp"

namespace {

using namespace cmx;

std::vector<std::pair<mq::QueueAddress, std::string>> deliveries(int n) {
  std::vector<std::pair<mq::QueueAddress, std::string>> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(mq::QueueAddress("QM", "DEST" + std::to_string(i)),
                     util::generate_id("msg"));
  }
  return out;
}

void BM_StageCompensation(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  cm::CompensationManager comp(qm);
  for (auto _ : state) {
    state.PauseTiming();
    const auto id = util::generate_id("cm");
    const auto dels = deliveries(fanout);
    state.ResumeTiming();
    comp.stage(id, "undo data", dels).expect_ok("stage");
    state.PauseTiming();
    comp.discard(id).expect_ok("discard");
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_StageCompensation)->Arg(1)->Arg(4)->Arg(16);

void BM_ReleaseCompensation(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  for (int i = 0; i < fanout; ++i) {
    qm.create_queue("DEST" + std::to_string(i)).expect_ok("create");
  }
  cm::CompensationManager comp(qm);
  for (auto _ : state) {
    state.PauseTiming();
    const auto id = util::generate_id("cm");
    comp.stage(id, std::nullopt, deliveries(fanout)).expect_ok("stage");
    state.ResumeTiming();
    comp.release(id).expect_ok("release");
    state.PauseTiming();
    for (int i = 0; i < fanout; ++i) {
      while (qm.get("DEST" + std::to_string(i), 0).is_ok()) {
      }
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_ReleaseCompensation)->Arg(1)->Arg(4)->Arg(16);

mq::Message data_msg(const std::string& queue, const std::string& msg_id) {
  mq::Message m("payload");
  m.set_id(msg_id);
  m.set_property(cm::prop::kKind, std::string("data"));
  m.set_property(cm::prop::kCmId, util::generate_id("cm"));
  m.set_property(cm::prop::kProcessingRequired, false);
  m.set_property(cm::prop::kSenderQmgr, std::string("QM"));
  m.set_property(cm::prop::kAckQueue, std::string(cm::kAckQueue));
  m.set_property(cm::prop::kSendTs, std::int64_t{0});
  m.set_property(cm::prop::kDest, "QM/" + queue);
  return m;
}

mq::Message comp_msg(const std::string& original_id) {
  mq::Message m;
  m.set_property(cm::prop::kKind, std::string("compensation"));
  m.set_property(cm::prop::kCmId, util::generate_id("cm"));
  m.set_property(cm::prop::kOriginalMsgId, original_id);
  m.set_correlation_id(original_id);
  return m;
}

// Annihilation: original still unread when its compensation is read.
void BM_Annihilation(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("Q").expect_ok("create");
  qm.ensure_queue(cm::kAckQueue).expect_ok("ensure");
  cm::ConditionalReceiver rx(qm, "reader");
  for (auto _ : state) {
    state.PauseTiming();
    const auto original_id = util::generate_id("msg");
    qm.put_local("Q", data_msg("Q", original_id)).expect_ok("put data");
    qm.put_local("Q", comp_msg(original_id)).expect_ok("put comp");
    state.ResumeTiming();
    // read finds the original, detects the trailing compensation, and
    // annihilates the pair; nothing is delivered
    benchmark::DoNotOptimize(rx.read_message("Q", 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Annihilation);

// Delivered compensation: original consumed first (RLOG entry written),
// compensation must be matched against the log and delivered.
void BM_DeliveredCompensation(benchmark::State& state) {
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  qm.create_queue("Q").expect_ok("create");
  qm.ensure_queue(cm::kAckQueue).expect_ok("ensure");
  cm::ConditionalReceiver rx(qm, "reader");
  int since_drain = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (++since_drain >= 500) {
      // keep the RLOG scan bounded, like a receiver that trims its log
      while (qm.get(cm::kReceiverLogQueue, 0).is_ok()) {
      }
      while (qm.get(cm::kAckQueue, 0).is_ok()) {
      }
      since_drain = 0;
    }
    const auto original_id = util::generate_id("msg");
    qm.put_local("Q", data_msg("Q", original_id)).expect_ok("put data");
    rx.read_message("Q", 0).status().expect_ok("consume original");
    qm.put_local("Q", comp_msg(original_id)).expect_ok("put comp");
    state.ResumeTiming();
    auto comp = rx.read_message("Q", 0);
    if (!comp.is_ok() ||
        comp.value().kind != cm::MessageKind::kCompensation) {
      state.SkipWithError("compensation not delivered");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeliveredCompensation);

}  // namespace

BENCHMARK_MAIN();
