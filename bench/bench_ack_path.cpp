// E5 — receiver-side read + implicit-acknowledgment path (Figure 7):
// plain MOM read (floor) vs. conditional non-transactional read (read ack
// + RLOG entry) vs. transactional read-commit (processing ack bound to
// commit). Also the cost of a rollback (no ack, message restored).
#include <benchmark/benchmark.h>

#include "cm/control.hpp"
#include "cm/receiver.hpp"
#include "mq/queue_manager.hpp"
#include "util/id.hpp"

namespace {

using namespace cmx;

// Crafts the standard message a conditional sender would generate.
mq::Message conditional_data_msg(const std::string& queue) {
  mq::Message m("payload");
  m.set_id(util::generate_id("msg"));
  m.set_property(cm::prop::kKind, std::string("data"));
  m.set_property(cm::prop::kCmId, util::generate_id("cm"));
  m.set_property(cm::prop::kProcessingRequired, false);
  m.set_property(cm::prop::kSenderQmgr, std::string("QM"));
  m.set_property(cm::prop::kAckQueue, std::string(cm::kAckQueue));
  m.set_property(cm::prop::kSendTs, std::int64_t{0});
  m.set_property(cm::prop::kDest, "QM/" + queue);
  return m;
}

struct Fixture {
  util::SystemClock clock;
  mq::QueueManager qm{"QM", clock};
  Fixture() {
    qm.create_queue("Q").expect_ok("create");
    qm.ensure_queue(cm::kAckQueue).expect_ok("ensure ack");
  }
  void drain_acks() {
    while (qm.get(cm::kAckQueue, 0).is_ok()) {
    }
    auto rlog = qm.find_queue(cm::kReceiverLogQueue);
    if (rlog != nullptr) {
      while (qm.get(cm::kReceiverLogQueue, 0).is_ok()) {
      }
    }
  }
};

void BM_PlainRead(benchmark::State& state) {
  Fixture f;
  cm::ConditionalReceiver rx(f.qm, "reader");
  for (auto _ : state) {
    state.PauseTiming();
    f.qm.put(mq::QueueAddress("", "Q"), mq::Message("plain"))
        .expect_ok("put");
    state.ResumeTiming();
    benchmark::DoNotOptimize(rx.read_message("Q", 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainRead);

void BM_NonTransactionalReadWithAck(benchmark::State& state) {
  Fixture f;
  cm::ConditionalReceiver rx(f.qm, "reader");
  int since_drain = 0;
  for (auto _ : state) {
    state.PauseTiming();
    f.qm.put_local("Q", conditional_data_msg("Q")).expect_ok("put");
    if (++since_drain >= 1000) {
      f.drain_acks();
      since_drain = 0;
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(rx.read_message("Q", 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NonTransactionalReadWithAck);

void BM_TransactionalReadCommit(benchmark::State& state) {
  Fixture f;
  cm::ConditionalReceiver rx(f.qm, "reader");
  int since_drain = 0;
  for (auto _ : state) {
    state.PauseTiming();
    f.qm.put_local("Q", conditional_data_msg("Q")).expect_ok("put");
    if (++since_drain >= 1000) {
      f.drain_acks();
      since_drain = 0;
    }
    state.ResumeTiming();
    rx.begin_tx().expect_ok("begin");
    benchmark::DoNotOptimize(rx.read_message("Q", 0));
    rx.commit_tx().expect_ok("commit");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactionalReadCommit);

void BM_TransactionalReadRollback(benchmark::State& state) {
  Fixture f;
  cm::ConditionalReceiver rx(f.qm, "reader");
  f.qm.put_local("Q", conditional_data_msg("Q")).expect_ok("put");
  for (auto _ : state) {
    rx.begin_tx().expect_ok("begin");
    benchmark::DoNotOptimize(rx.read_message("Q", 0));
    rx.rollback_tx().expect_ok("rollback");  // message restored, no ack
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransactionalReadRollback);

}  // namespace

BENCHMARK_MAIN();
