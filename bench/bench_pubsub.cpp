// Pub/sub extension characterization: broker match + fan-out cost vs.
// subscription count and pattern kind, and the conditional-publish path
// (condition synthesis over the subscriber snapshot + the full
// fan-out/ack/outcome cycle).
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "cm/conditional_publisher.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "mq/pubsub.hpp"
#include "mq/queue_manager.hpp"

namespace {

using namespace cmx;

void BM_PublishFanOut(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  mq::TopicBroker broker(qm);
  std::vector<std::string> queues;
  for (int i = 0; i < subscribers; ++i) {
    auto sub = broker.subscribe("market.#");
    sub.status().expect_ok("subscribe");
    queues.push_back(sub.value().queue);
  }
  int since_drain = 0;
  for (auto _ : state) {
    broker.publish("market.emea.fx", mq::Message("tick")).expect_ok("pub");
    if (++since_drain >= 200) {
      state.PauseTiming();
      for (const auto& q : queues) {
        while (qm.get(q, 0).is_ok()) {
        }
      }
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * subscribers);
}
BENCHMARK(BM_PublishFanOut)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// Matching cost when most subscriptions do NOT match (selective broker).
void BM_PublishSelective(benchmark::State& state) {
  const int subscriptions = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  mq::TopicBroker broker(qm);
  std::string hit_queue;
  for (int i = 0; i < subscriptions; ++i) {
    auto sub = broker.subscribe("other.topic." + std::to_string(i));
    sub.status().expect_ok("subscribe");
  }
  auto hit = broker.subscribe("the.one");
  hit.status().expect_ok("subscribe");
  hit_queue = hit.value().queue;
  int since_drain = 0;
  for (auto _ : state) {
    broker.publish("the.one", mq::Message("x")).expect_ok("pub");
    if (++since_drain >= 500) {
      state.PauseTiming();
      while (qm.get(hit_queue, 0).is_ok()) {
      }
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PublishSelective)->Arg(8)->Arg(64)->Arg(512);

// Full conditional-publish round trip: condition over the subscriber
// snapshot, k-of-n pick-up, subscribers served by reader threads.
void BM_ConditionalPublishRoundTrip(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock);
  mq::TopicBroker broker(qm);
  cm::ConditionalMessagingService service(qm);
  cm::ConditionalPublisher publisher(service, broker);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < subscribers; ++i) {
    auto sub = broker.subscribe("alerts");
    sub.status().expect_ok("subscribe");
    readers.emplace_back([&qm, &stop, queue = sub.value().queue, i] {
      cm::ConditionalReceiver rx(qm, "sub" + std::to_string(i));
      while (!stop.load()) {
        rx.read_message(queue, 20);
      }
    });
  }
  cm::PublishConditions conditions;
  conditions.pick_up_within = 60'000;
  for (auto _ : state) {
    auto cm_id = publisher.publish("alerts", "event", conditions);
    cm_id.status().expect_ok("publish");
    auto outcome = service.await_outcome(cm_id.value(), 60'000);
    outcome.status().expect_ok("outcome");
    if (outcome.value().outcome != cm::Outcome::kSuccess) {
      state.SkipWithError("unexpected failure");
      break;
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionalPublishRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
