// E8 — Dependency-Spheres (§3, Figure 10): sphere commit latency vs.
// number of member messages, abort latency (compensating every member),
// and 2PC cost vs. number of enlisted transactional resources.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cm/condition_builder.hpp"
#include "cm/receiver.hpp"
#include "cm/sender.hpp"
#include "ds/dsphere.hpp"
#include "mq/queue_manager.hpp"
#include "txn/kvstore.hpp"
#include "util/id.hpp"

namespace {

using namespace cmx;

struct Harness {
  util::SystemClock clock;
  mq::QueueManager qm{"QM", clock};
  cm::ConditionalMessagingService service{qm};
  txn::TwoPhaseCoordinator coordinator;
  ds::DSphereService spheres{service, coordinator};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;

  explicit Harness(int queues, bool with_readers) {
    for (int i = 0; i < queues; ++i) {
      qm.create_queue("M" + std::to_string(i)).expect_ok("create");
      if (with_readers) {
        readers.emplace_back([this, i] {
          cm::ConditionalReceiver rx(qm, "reader" + std::to_string(i));
          while (!stop.load()) {
            rx.read_message("M" + std::to_string(i), 20);
          }
        });
      }
    }
  }
  ~Harness() {
    stop.store(true);
    for (auto& t : readers) t.join();
  }

  cm::ConditionPtr member_condition(int i, util::TimeMs pick_up) {
    return cm::DestBuilder(
               mq::QueueAddress("QM", "M" + std::to_string(i)))
        .pick_up_within(pick_up)
        .build();
  }
};

// Commit latency: all members are consumed by reader threads and succeed.
void BM_SphereCommit(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  Harness h(members, /*with_readers=*/true);
  for (auto _ : state) {
    const auto ds = h.spheres.begin();
    for (int i = 0; i < members; ++i) {
      h.spheres.send_message(ds, "m", *h.member_condition(i, 60'000))
          .status()
          .expect_ok("send member");
    }
    auto result = h.spheres.commit(ds, 60'000);
    result.status().expect_ok("commit");
    if (result.value().outcome != ds::DSphereOutcome::kCommitted) {
      state.SkipWithError("sphere unexpectedly aborted");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * members);
}
BENCHMARK(BM_SphereCommit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// Abort latency: members fail by deadline; abort must force-fail and
// compensate every one of them.
void BM_SphereAbort(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  Harness h(members, /*with_readers=*/false);
  for (auto _ : state) {
    const auto ds = h.spheres.begin();
    for (int i = 0; i < members; ++i) {
      h.spheres.send_message(ds, "m", *h.member_condition(i, 60'000))
          .status()
          .expect_ok("send member");
    }
    auto result = h.spheres.abort(ds);
    result.status().expect_ok("abort");
    state.PauseTiming();
    // annihilate the original+compensation pairs left on the queues
    for (int i = 0; i < members; ++i) {
      cm::ConditionalReceiver rx(h.qm, "sweeper");
      rx.read_message("M" + std::to_string(i), 0);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * members);
}
BENCHMARK(BM_SphereAbort)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

// 2PC resource count scaling (no messages): prepare+commit across R
// independent stores.
void BM_SphereResources(benchmark::State& state) {
  const int resources = static_cast<int>(state.range(0));
  Harness h(0, false);
  std::vector<std::unique_ptr<txn::TxKvStore>> stores;
  for (int i = 0; i < resources; ++i) {
    stores.push_back(
        std::make_unique<txn::TxKvStore>("db" + std::to_string(i)));
  }
  for (auto _ : state) {
    const auto ds = h.spheres.begin();
    auto tx = h.spheres.transaction_id(ds);
    tx.status().expect_ok("tx id");
    for (auto& store : stores) {
      h.spheres.enlist(ds, *store).expect_ok("enlist");
      store->put(tx.value(), util::generate_id("k"), "v").expect_ok("put");
    }
    auto result = h.spheres.commit(ds, 1000);
    result.status().expect_ok("commit");
  }
  state.SetItemsProcessed(state.iterations() * resources);
}
BENCHMARK(BM_SphereResources)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
