// Group-commit A/B: append throughput of the seed-faithful per-record
// FileStore path (group_commit=false: encode + frame + one ::write per
// record, serialized under the io mutex) vs. the group-commit engine
// (producers encode in parallel, a commit thread coalesces all staged
// records into one write and at most one fsync per group).
//
// Arms: {legacy, group} x {1, 8 producers} x {kNone, kEveryBatch}. The
// headline number — and the acceptance gate — is 8 producers at equal
// durability kNone vs. kNone, where the engine must deliver >= 3x.
//
// Writes BENCH_store_commit.json into the working directory.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "mq/store.hpp"

namespace {

using namespace cmx;

std::string temp_log_path(int arm_index) {
  return "/tmp/cmx_bench_store_" + std::to_string(::getpid()) + "_" +
         std::to_string(arm_index) + ".log";
}

// Appends `per_producer` 1 KiB put-records from each of `producers`
// threads and returns acknowledged records per second. Every append is a
// fresh LogRecord so the measured path includes the encode + crc32 work a
// real put pays.
double measure_appends_per_sec(bool group, int producers,
                               mq::SyncPolicy sync, int per_producer,
                               int arm_index) {
  const std::string path = temp_log_path(arm_index);
  ::unlink(path.c_str());
  const std::string payload(1024, 'x');
  double records_per_sec = 0.0;
  {
    mq::FileStoreOptions options;
    options.sync = sync;
    options.group_commit = group;
    mq::FileStore store(path, options);

    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int t = 0; t < producers; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < per_producer; ++i) {
          mq::Message msg(payload);
          msg.set_id("m" + std::to_string(t) + "-" + std::to_string(i));
          store.append(mq::LogRecord::put("Q", std::move(msg)))
              .expect_ok("bench append");
        }
      });
    }
    while (ready.load() < producers) {
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    records_per_sec =
        static_cast<double>(producers) * per_producer / secs;
  }
  ::unlink(path.c_str());
  return records_per_sec;
}

const char* sync_name(mq::SyncPolicy sync) {
  switch (sync) {
    case mq::SyncPolicy::kNone: return "none";
    case mq::SyncPolicy::kEveryBatch: return "every_batch";
    case mq::SyncPolicy::kInterval: return "interval";
  }
  return "?";
}

struct ArmResult {
  bool group;
  int producers;
  mq::SyncPolicy sync;
  double records_per_sec;
};

}  // namespace

int main() {
  struct Arm {
    bool group;
    int producers;
    mq::SyncPolicy sync;
    int per_producer;
  };
  // fsync arms run fewer iterations: the legacy path pays one fsync per
  // record and would otherwise dominate the wall-clock.
  const std::vector<Arm> arms = {
      {false, 1, mq::SyncPolicy::kNone, 20000},
      {true, 1, mq::SyncPolicy::kNone, 20000},
      {false, 8, mq::SyncPolicy::kNone, 10000},
      {true, 8, mq::SyncPolicy::kNone, 10000},
      {false, 1, mq::SyncPolicy::kEveryBatch, 300},
      {true, 1, mq::SyncPolicy::kEveryBatch, 300},
      {false, 8, mq::SyncPolicy::kEveryBatch, 300},
      {true, 8, mq::SyncPolicy::kEveryBatch, 300},
  };

  // Best-of-3 per arm: thread scheduling makes single-shot numbers noisy.
  std::vector<ArmResult> results;
  int arm_index = 0;
  for (const auto& arm : arms) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best,
                      measure_appends_per_sec(arm.group, arm.producers,
                                              arm.sync, arm.per_producer,
                                              arm_index++));
    }
    results.push_back({arm.group, arm.producers, arm.sync, best});
    std::cout << (arm.group ? "group " : "legacy") << " producers="
              << arm.producers << " sync=" << sync_name(arm.sync) << ": "
              << static_cast<std::uint64_t>(best) << " records/s\n";
  }

  double legacy_8_none = 0.0, group_8_none = 0.0;
  for (const auto& r : results) {
    if (r.producers == 8 && r.sync == mq::SyncPolicy::kNone) {
      (r.group ? group_8_none : legacy_8_none) = r.records_per_sec;
    }
  }
  const double speedup =
      legacy_8_none > 0.0 ? group_8_none / legacy_8_none : 0.0;

  std::ofstream out("BENCH_store_commit.json");
  out << "{\"bench\": \"store_commit\", \"payload_bytes\": 1024, "
      << "\"arms\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) out << ", ";
    out << "{\"mode\": \"" << (r.group ? "group" : "legacy")
        << "\", \"producers\": " << r.producers << ", \"sync\": \""
        << sync_name(r.sync) << "\", \"records_per_sec\": "
        << r.records_per_sec << "}";
  }
  out << "], \"headline\": {\"producers\": 8, \"sync\": \"none\", "
      << "\"legacy_records_per_sec\": " << legacy_8_none
      << ", \"group_records_per_sec\": " << group_8_none
      << ", \"speedup\": " << speedup << "}}\n";
  std::cout << "BENCH_store_commit.json: 8-producer kNone speedup = "
            << speedup << "x\n";
  return 0;
}
