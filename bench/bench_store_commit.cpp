// Store-commit bench, two questions in one binary (DESIGN.md §11):
//
//  1. Group-commit A/B (E15, unchanged): append throughput of the
//     seed-faithful per-record FileStore path (group_commit=false: encode +
//     frame + one ::write per record, serialized under the io mutex) vs.
//     the group-commit engine (producers encode in parallel, a commit
//     thread coalesces all staged records into one write and at most one
//     fsync per group). Headline — and the acceptance gate — is 8
//     producers at equal durability kNone vs. kNone, engine >= 3x.
//
//  2. Engine dimension (E19): the same append loop across the registry's
//     storage engines — memory (no disk), file (group commit) and
//     segmented — at equal durability (same sync policy), so the numbers
//     answer "what does each durable engine cost over the in-memory
//     baseline, and what does the segmented layout cost over the flat
//     log". Engines are built from registry specs, exactly the strings a
//     deployment would pass via --store.
//
// Every arm also reports allocs/record (global operator new shim, all
// threads) and serializations/record (mq.msg.serializations delta) so a
// throughput win can't hide an allocation or re-encode regression.
//
// Writes BENCH_store_commit.json into the working directory.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "mq/store.hpp"
#include "obs/registry.hpp"

// ---- allocation accounting ------------------------------------------------
// Counting shims over the global allocator (same idiom as bench_msg_path):
// every heap allocation in the process bumps one relaxed atomic, so an
// arm's allocs/record is the counter delta across the timed loop divided
// by appended records — covering producer threads and the commit thread.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cmx;

std::string temp_store_path(int arm_index) {
  return "/tmp/cmx_bench_store_" + std::to_string(::getpid()) + "_" +
         std::to_string(arm_index);
}

std::uint64_t counter_value(const obs::MetricsRegistry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

struct Measurement {
  double records_per_sec = 0.0;
  double allocs_per_record = 0.0;
  double serializations_per_record = 0.0;
};

// Appends `per_producer` 1 KiB put-records from each of `producers`
// threads through a registry-built store and returns acknowledged records
// per second plus the per-record alloc/serialization costs. Every append
// is a fresh LogRecord so the measured path includes the encode + crc32c
// work a real put pays. `path` (empty for path-less engines) is wiped
// before and after so reps never replay a predecessor's log.
Measurement measure(const std::string& spec, const std::string& path,
                    int producers, int per_producer) {
  if (!path.empty()) std::filesystem::remove_all(path);
  const std::string payload(1024, 'x');
  const std::uint64_t total =
      static_cast<std::uint64_t>(producers) * per_producer;
  Measurement m;
  {
    auto store = mq::make_store(spec);
    store.status().expect_ok("bench store spec");

    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int t = 0; t < producers; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < per_producer; ++i) {
          mq::Message msg(payload);
          msg.set_id("m" + std::to_string(t) + "-" + std::to_string(i));
          store.value()
              ->append(mq::LogRecord::put("Q", std::move(msg)))
              .expect_ok("bench append");
        }
      });
    }
    while (ready.load() < producers) {
    }
    obs::MetricsRegistry::instance().reset();
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t allocs_after =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    m.records_per_sec = static_cast<double>(total) / secs;
    m.allocs_per_record =
        static_cast<double>(allocs_after - allocs_before) / total;
    m.serializations_per_record =
        static_cast<double>(counter_value(snap, "mq.msg.serializations")) /
        total;
  }
  if (!path.empty()) std::filesystem::remove_all(path);
  return m;
}

struct Arm {
  const char* engine;  // "memory" | "file_legacy" | "file_group" | "segmented"
  const char* sync;    // "none" | "every_batch" | "n/a" (memory)
  int producers;
  int per_producer;
};

struct ArmResult {
  Arm arm;
  Measurement best;
};

// Builds the registry spec string for an arm — the exact string a
// deployment would pass as --store.
std::string arm_spec(const Arm& arm, const std::string& path) {
  const std::string engine = arm.engine;
  if (engine == "memory") return "memory";
  if (engine == "segmented") {
    return "segmented:" + path + "?sync=" + arm.sync;
  }
  return "file:" + path + "?sync=" + std::string(arm.sync) +
         "&group_commit=" + (engine == "file_group" ? "1" : "0");
}

}  // namespace

int main() {
  obs::set_enabled(true);
  // fsync arms run fewer iterations: the legacy path pays one fsync per
  // record and would otherwise dominate the wall-clock.
  const std::vector<Arm> arms = {
      // E15 group-commit A/B on the flat file log.
      {"file_legacy", "none", 1, 20000},
      {"file_group", "none", 1, 20000},
      {"file_legacy", "none", 8, 10000},
      {"file_group", "none", 8, 10000},
      {"file_legacy", "every_batch", 1, 300},
      {"file_group", "every_batch", 1, 300},
      {"file_legacy", "every_batch", 8, 300},
      {"file_group", "every_batch", 8, 300},
      // E19 engine dimension: memory baseline, segmented at both policies.
      {"memory", "n/a", 1, 20000},
      {"memory", "n/a", 8, 10000},
      {"segmented", "none", 1, 20000},
      {"segmented", "none", 8, 10000},
      {"segmented", "every_batch", 1, 300},
      {"segmented", "every_batch", 8, 300},
  };

  // Best-of-3 per arm: thread scheduling makes single-shot numbers noisy.
  std::vector<ArmResult> results;
  int arm_index = 0;
  for (const auto& arm : arms) {
    Measurement best;
    for (int rep = 0; rep < 3; ++rep) {
      const std::string path = std::string(arm.engine) == "memory"
                                   ? std::string()
                                   : temp_store_path(arm_index);
      ++arm_index;
      const auto rep_m =
          measure(arm_spec(arm, path), path, arm.producers, arm.per_producer);
      if (rep_m.records_per_sec > best.records_per_sec) best = rep_m;
    }
    results.push_back({arm, best});
    std::cout << arm.engine << " producers=" << arm.producers
              << " sync=" << arm.sync << ": "
              << static_cast<std::uint64_t>(best.records_per_sec)
              << " records/s, " << best.allocs_per_record << " allocs/rec, "
              << best.serializations_per_record << " serializations/rec\n";
  }

  const auto find = [&](const char* engine, const char* sync,
                        int producers) -> const Measurement* {
    for (const auto& r : results) {
      if (std::string(r.arm.engine) == engine &&
          std::string(r.arm.sync) == sync && r.arm.producers == producers) {
        return &r.best;
      }
    }
    return nullptr;
  };
  const auto* legacy_8_none = find("file_legacy", "none", 8);
  const auto* group_8_none = find("file_group", "none", 8);
  const double speedup =
      legacy_8_none && group_8_none && legacy_8_none->records_per_sec > 0.0
          ? group_8_none->records_per_sec / legacy_8_none->records_per_sec
          : 0.0;
  const auto* mem_8 = find("memory", "n/a", 8);
  const auto* seg_8_none = find("segmented", "none", 8);
  const auto* seg_8_batch = find("segmented", "every_batch", 8);
  const auto* file_8_batch = find("file_group", "every_batch", 8);

  std::ofstream out("BENCH_store_commit.json");
  out << "{\"bench\": \"store_commit\", \"payload_bytes\": 1024, "
      << "\"arms\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) out << ", ";
    out << "{\"engine\": \"" << r.arm.engine << "\", \"producers\": "
        << r.arm.producers << ", \"sync\": \"" << r.arm.sync
        << "\", \"records_per_sec\": " << r.best.records_per_sec
        << ", \"allocs_per_record\": " << r.best.allocs_per_record
        << ", \"serializations_per_record\": "
        << r.best.serializations_per_record << "}";
  }
  out << "], \"headline\": {\"producers\": 8, \"sync\": \"none\", "
      << "\"legacy_records_per_sec\": "
      << (legacy_8_none ? legacy_8_none->records_per_sec : 0.0)
      << ", \"group_records_per_sec\": "
      << (group_8_none ? group_8_none->records_per_sec : 0.0)
      << ", \"speedup\": " << speedup
      << "}, \"headline_engines\": {\"producers\": 8, "
      << "\"memory_records_per_sec\": "
      << (mem_8 ? mem_8->records_per_sec : 0.0)
      << ", \"file_group_none_records_per_sec\": "
      << (group_8_none ? group_8_none->records_per_sec : 0.0)
      << ", \"segmented_none_records_per_sec\": "
      << (seg_8_none ? seg_8_none->records_per_sec : 0.0)
      << ", \"file_group_every_batch_records_per_sec\": "
      << (file_8_batch ? file_8_batch->records_per_sec : 0.0)
      << ", \"segmented_every_batch_records_per_sec\": "
      << (seg_8_batch ? seg_8_batch->records_per_sec : 0.0) << "}}\n";
  std::cout << "BENCH_store_commit.json: 8-producer kNone group-commit "
            << "speedup = " << speedup << "x\n";
  return 0;
}
