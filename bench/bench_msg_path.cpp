// E16 — zero-copy message core A/B on the full persistent delivery path.
//
// Closed-loop, two queue managers joined by a channel: each round fans one
// body out to `fanout` destination queues on the remote manager (persistent
// messages, MemoryStore on both sides — the store exercises the complete
// encode-per-append path without disk noise), then blocks until all copies
// arrive. The A/B arms run in ONE binary via set_zero_copy_enabled():
//
//   zero_copy  — shared payloads, flat property bags, memoized frames
//   deep_copy  — every Message copy duplicates the body and every encode
//                re-serializes (the seed's behaviour)
//
// Grid: body 256 B / 4 KiB / 64 KiB x fanout 1 / 8. Reported per arm:
// delivered msgs/sec, serializations per delivered message, and the
// frame-cache counters; hit_rate = (hits + patches) / (hits + patches +
// misses). Headline (the acceptance gate): fanout 8 x 64 KiB zero_copy
// must deliver >= 2x the deep_copy arm's msgs/sec, with a persistent-path
// frame-cache hit rate > 90%.
//
// Writes BENCH_msg_path.json into the working directory (skipped with
// --smoke, which runs one tiny zero-copy arm as a CI liveness check).
//
// E17 — transport A/B (--transport): the same windowed closed loop and
// grid, but the arms compare WHERE the remote queue manager lives:
//
//   inproc — both managers in this process, in-process Channel (E16's
//            zero-copy arm re-run as the baseline)
//   tcp    — the receiving manager in a CHILD PROCESS (fork+exec of this
//            binary with --child), joined by a TransportChannel /
//            TransportServer pair over loopback TCP
//
// The child drains the destination queues and reports (delivered,
// distinct message ids) back over a pipe, so every tcp arm doubles as an
// exactly-once check. Latency is sender-side ack RTT (transport.ack_rtt_us)
// — one-way transit is unmeasurable across processes because SystemClock
// epochs are per-process (docs/PROTOCOL.md §8). Writes
// BENCH_transport.json; --transport-smoke runs one tiny tcp arm as the CI
// 2-process liveness check.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mq/network.hpp"
#include "mq/payload.hpp"
#include "mq/queue_manager.hpp"
#include "mq/store.hpp"
#include "mq/transport/transport_channel.hpp"
#include "mq/transport/transport_server.hpp"
#include "obs/registry.hpp"

namespace {

using namespace cmx;

struct ArmResult {
  const char* mode;
  std::size_t body_bytes;
  int fanout;
  std::uint64_t delivered = 0;
  double duration_s = 0.0;
  double msgs_per_sec = 0.0;
  std::uint64_t serializations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_patches = 0;
  double hit_rate = 0.0;
};

std::uint64_t counter_value(const obs::MetricsRegistry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

ArmResult run_arm(bool zero_copy, std::size_t body_bytes, int fanout,
                  int rounds) {
  mq::set_zero_copy_enabled(zero_copy);

  util::SystemClock clock;
  mq::QueueManager qm1("QM1", clock, std::make_unique<mq::MemoryStore>());
  mq::QueueManager qm2("QM2", clock, std::make_unique<mq::MemoryStore>());
  std::vector<std::string> dests;
  for (int i = 0; i < fanout; ++i) {
    dests.push_back("DEST" + std::to_string(i));
    qm2.create_queue(dests.back()).expect_ok("create dest");
  }
  mq::Network net;
  net.add(qm1);
  net.add(qm2);

  const std::string body(body_bytes, 'x');
  std::uint64_t delivered = 0;

  // Warmup: a few fully-drained rounds before the timer so thread spin-up
  // and the clock's first-millisecond cold start (put_time_ms 0 reads as
  // "unset" and gets re-stamped on arrival) don't pollute either arm.
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<mq::QueueAddress, mq::Message>> warm;
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg{std::string(body_bytes, 'w')};
      msg.set_persistence(mq::Persistence::kPersistent);
      warm.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(warm)).expect_ok("warmup put");
    for (int i = 0; i < fanout; ++i) {
      qm2.get(dests[i], 30'000).status().expect_ok("warmup get");
    }
  }
  // The clock reads 0 for its first millisecond; a message stamped then
  // looks "unset" (put_time_ms 0) and is re-stamped on arrival, which
  // invalidates its cached frame. Start the timed run past that edge.
  clock.sleep_ms(2);
  obs::MetricsRegistry::instance().reset();

  // Closed loop with a bounded window: the producer keeps at most
  // kWindow messages in flight (xmit queue + channel + destination
  // queues) while a consumer thread drains the far side. The window makes
  // the measurement throughput-bound — pure ping-pong per round would
  // measure channel hand-off latency, which both arms share — while still
  // preventing unbounded queue growth.
  constexpr int kWindow = 256;
  std::mutex window_mu;
  std::condition_variable window_cv;
  int outstanding = 0;

  const auto t0 = std::chrono::steady_clock::now();
  std::thread consumer([&] {
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < fanout; ++i) {
        auto got = qm2.get(dests[i], 30'000);
        got.status().expect_ok("delivery");
        ++delivered;
        {
          std::lock_guard<std::mutex> lk(window_mu);
          --outstanding;
        }
        window_cv.notify_one();
      }
    }
  });
  for (int round = 0; round < rounds; ++round) {
    {
      std::unique_lock<std::mutex> lk(window_mu);
      window_cv.wait(lk, [&] { return outstanding + fanout <= kWindow; });
      outstanding += fanout;
    }
    // One shared payload per round: under zero_copy the fan-out legs all
    // reference it; under deep_copy each Message copy duplicates it.
    const mq::Payload payload{body};
    std::vector<std::pair<mq::QueueAddress, mq::Message>> puts;
    puts.reserve(fanout);
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg(payload);
      msg.set_persistence(mq::Persistence::kPersistent);
      puts.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(puts)).expect_ok("fanout put");
  }
  consumer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  net.shutdown();

  const auto snap = obs::MetricsRegistry::instance().snapshot();
  ArmResult r;
  r.mode = zero_copy ? "zero_copy" : "deep_copy";
  r.body_bytes = body_bytes;
  r.fanout = fanout;
  r.delivered = delivered;
  r.duration_s = elapsed;
  r.msgs_per_sec = elapsed > 0.0 ? delivered / elapsed : 0.0;
  r.serializations = counter_value(snap, "mq.msg.serializations");
  r.cache_hits = counter_value(snap, "mq.msg.frame_cache_hits");
  r.cache_misses = counter_value(snap, "mq.msg.frame_cache_misses");
  r.cache_fills = counter_value(snap, "mq.msg.frame_cache_fills");
  r.cache_patches = counter_value(snap, "mq.msg.frame_cache_patches");
  const double served = static_cast<double>(r.cache_hits + r.cache_patches);
  const double demand = served + static_cast<double>(r.cache_misses);
  r.hit_rate = demand > 0.0 ? served / demand : 0.0;
  return r;
}

// ---- E17: transport A/B ---------------------------------------------------

struct TransportArm {
  const char* transport;  // "inproc" or "tcp"
  std::size_t body_bytes;
  int fanout;
  std::uint64_t delivered = 0;
  double duration_s = 0.0;
  double msgs_per_sec = 0.0;
  double serializations_per_msg = 0.0;
  // tcp-only fields (0 for inproc):
  std::uint64_t ack_rtt_p50_us = 0;
  std::uint64_t ack_rtt_p95_us = 0;
  std::uint64_t ack_rtt_p99_us = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t batches = 0;
  std::uint64_t retransmitted = 0;
  bool exactly_once = true;
};

// Child-process receiver: one queue manager + transport server. Writes
// its port to `pipe_fd`, drains `expected` messages round-major across
// the fanout queues, then reports "<delivered> <distinct ids>" on the
// same pipe — the parent's exactly-once verification.
int run_child(int fanout, std::uint64_t expected, int pipe_fd) {
  obs::set_enabled(true);
  mq::set_zero_copy_enabled(true);
  util::SystemClock clock;
  mq::QueueManager qm2("QM2", clock, std::make_unique<mq::MemoryStore>());
  std::vector<std::string> dests;
  for (int i = 0; i < fanout; ++i) {
    dests.push_back("DEST" + std::to_string(i));
    qm2.create_queue(dests.back()).expect_ok("create dest");
  }
  mq::transport::TransportServer server(qm2);
  server.start().expect_ok("child server start");
  dprintf(pipe_fd, "%u\n", server.port());

  std::uint64_t delivered = 0;
  std::set<std::string> ids;
  const std::uint64_t per_queue = expected / fanout;
  for (std::uint64_t round = 0; round < per_queue; ++round) {
    for (int i = 0; i < fanout; ++i) {
      auto got = qm2.get(dests[i], 120'000);
      got.status().expect_ok("child delivery");
      ++delivered;
      ids.insert(got.value().id());
    }
  }
  dprintf(pipe_fd, "%llu %llu\n",
          static_cast<unsigned long long>(delivered),
          static_cast<unsigned long long>(ids.size()));
  server.stop();
  return 0;
}

TransportArm run_tcp_arm(const char* argv0, std::size_t body_bytes,
                         int fanout, int rounds) {
  constexpr int kWarmupRounds = 10;
  constexpr std::uint64_t kWindow = 256;  // matches the in-proc closed loop
  const std::uint64_t warm_total =
      static_cast<std::uint64_t>(kWarmupRounds) * fanout;
  const std::uint64_t total =
      static_cast<std::uint64_t>(rounds + kWarmupRounds) * fanout;

  int pipefd[2];
  if (pipe(pipefd) != 0) {
    std::cerr << "pipe failed\n";
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid == 0) {
    ::close(pipefd[0]);
    execl(argv0, argv0, "--child", std::to_string(fanout).c_str(),
          std::to_string(total).c_str(), std::to_string(pipefd[1]).c_str(),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ::close(pipefd[1]);
  FILE* from_child = fdopen(pipefd[0], "r");
  unsigned port = 0;
  if (fscanf(from_child, "%u", &port) != 1 || port == 0) {
    std::cerr << "child failed to report a port\n";
    std::exit(1);
  }

  mq::set_zero_copy_enabled(true);
  util::SystemClock clock;
  mq::QueueManager qm1("QM1", clock, std::make_unique<mq::MemoryStore>());
  mq::Network net;
  net.add(qm1);
  mq::transport::TransportChannelOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.window = kWindow;  // channel flow control IS the loop window
  net.add_remote(qm1, "QM2", options).expect_ok("add_remote");
  auto* channel = net.transport_channel("QM1", "QM2");

  std::vector<std::string> dests;
  for (int i = 0; i < fanout; ++i) dests.push_back("DEST" + std::to_string(i));
  const std::string body(body_bytes, 'x');
  std::uint64_t sent = 0;
  auto produce_round = [&] {
    const mq::Payload payload{body};
    std::vector<std::pair<mq::QueueAddress, mq::Message>> puts;
    puts.reserve(fanout);
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg(payload);
      msg.set_persistence(mq::Persistence::kPersistent);
      puts.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(puts)).expect_ok("tcp fanout put");
    sent += fanout;
    // Closed loop: never run more than kWindow ahead of the acks.
    if (sent > kWindow && !channel->wait_for_acked(sent - kWindow, 120'000)) {
      std::cerr << "ack window stalled\n";
      std::exit(1);
    }
  };

  for (int round = 0; round < kWarmupRounds; ++round) produce_round();
  if (!channel->wait_for_acked(warm_total, 120'000)) {
    std::cerr << "warmup not acked\n";
    std::exit(1);
  }
  obs::MetricsRegistry::instance().reset();
  const auto stats_before = channel->stats();

  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) produce_round();
  if (!channel->wait_for_acked(total, 120'000)) {
    std::cerr << "run not acked\n";
    std::exit(1);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats_after = channel->stats();

  unsigned long long child_delivered = 0, child_unique = 0;
  if (fscanf(from_child, "%llu %llu", &child_delivered, &child_unique) != 2) {
    std::cerr << "child failed to report results\n";
    std::exit(1);
  }
  fclose(from_child);
  int child_status = 0;
  waitpid(pid, &child_status, 0);
  net.shutdown();

  const auto snap = obs::MetricsRegistry::instance().snapshot();
  TransportArm arm;
  arm.transport = "tcp";
  arm.body_bytes = body_bytes;
  arm.fanout = fanout;
  arm.delivered = static_cast<std::uint64_t>(rounds) * fanout;
  arm.duration_s = elapsed;
  arm.msgs_per_sec = elapsed > 0.0 ? arm.delivered / elapsed : 0.0;
  const auto serializations = counter_value(snap, "mq.msg.serializations");
  arm.serializations_per_msg =
      arm.delivered > 0 ? static_cast<double>(serializations) / arm.delivered
                        : 0.0;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "transport.ack_rtt_us") {
      arm.ack_rtt_p50_us = hist.p50();
      arm.ack_rtt_p95_us = hist.p95();
      arm.ack_rtt_p99_us = hist.p99();
    }
  }
  arm.bytes_sent = stats_after.bytes_sent - stats_before.bytes_sent;
  arm.batches = stats_after.batches - stats_before.batches;
  arm.retransmitted = stats_after.retransmitted - stats_before.retransmitted;
  arm.exactly_once = child_delivered == total && child_unique == total &&
                     WIFEXITED(child_status) && WEXITSTATUS(child_status) == 0;
  if (!arm.exactly_once) {
    std::cerr << "exactly-once VIOLATED: expected " << total << ", child saw "
              << child_delivered << " (" << child_unique << " unique)\n";
  }
  return arm;
}

TransportArm as_inproc_arm(const ArmResult& r) {
  TransportArm arm;
  arm.transport = "inproc";
  arm.body_bytes = r.body_bytes;
  arm.fanout = r.fanout;
  arm.delivered = r.delivered;
  arm.duration_s = r.duration_s;
  arm.msgs_per_sec = r.msgs_per_sec;
  arm.serializations_per_msg =
      r.delivered > 0 ? static_cast<double>(r.serializations) / r.delivered
                      : 0.0;
  return arm;
}

void print_transport_arm(const TransportArm& a) {
  std::cout << a.transport << " body=" << a.body_bytes
            << "B fanout=" << a.fanout << ": "
            << static_cast<std::uint64_t>(a.msgs_per_sec) << " msgs/s ("
            << a.delivered << " in " << a.duration_s << "s), "
            << a.serializations_per_msg << " serializations/msg";
  if (std::strcmp(a.transport, "tcp") == 0) {
    std::cout << ", ack_rtt p50/p95/p99 = " << a.ack_rtt_p50_us << "/"
              << a.ack_rtt_p95_us << "/" << a.ack_rtt_p99_us << " us, "
              << a.bytes_sent << " bytes, " << a.batches << " batches"
              << ", exactly_once=" << (a.exactly_once ? "yes" : "NO");
  }
  std::cout << "\n";
}

void transport_arm_json(std::ostream& out, const TransportArm& a) {
  out << "{\"transport\": \"" << a.transport
      << "\", \"body_bytes\": " << a.body_bytes << ", \"fanout\": " << a.fanout
      << ", \"delivered_msgs_per_sec\": " << a.msgs_per_sec
      << ", \"delivered\": " << a.delivered
      << ", \"duration_s\": " << a.duration_s
      << ", \"serializations_per_msg\": " << a.serializations_per_msg;
  if (std::strcmp(a.transport, "tcp") == 0) {
    out << ", \"ack_rtt_p50_us\": " << a.ack_rtt_p50_us
        << ", \"ack_rtt_p95_us\": " << a.ack_rtt_p95_us
        << ", \"ack_rtt_p99_us\": " << a.ack_rtt_p99_us
        << ", \"bytes_sent\": " << a.bytes_sent
        << ", \"batches\": " << a.batches
        << ", \"retransmitted\": " << a.retransmitted
        << ", \"exactly_once\": " << (a.exactly_once ? "true" : "false");
  }
  out << "}";
}

void print_arm(const ArmResult& r) {
  std::cout << r.mode << " body=" << r.body_bytes << "B fanout=" << r.fanout
            << ": " << static_cast<std::uint64_t>(r.msgs_per_sec)
            << " msgs/s (" << r.delivered << " in " << r.duration_s << "s), "
            << (r.delivered > 0
                    ? static_cast<double>(r.serializations) / r.delivered
                    : 0.0)
            << " serializations/msg, hit_rate=" << r.hit_rate
            << " (hits=" << r.cache_hits << " misses=" << r.cache_misses
            << " fills=" << r.cache_fills << " patches=" << r.cache_patches
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  obs::set_enabled(true);

  if (argc > 1 && std::strcmp(argv[1], "--child") == 0) {
    // Receiver half of a tcp arm; spawned by run_tcp_arm, never by hand.
    if (argc < 5) return 2;
    return run_child(std::atoi(argv[2]),
                     std::strtoull(argv[3], nullptr, 10),
                     std::atoi(argv[4]));
  }

  if (argc > 1 && std::strcmp(argv[1], "--transport-smoke") == 0) {
    // CI liveness gate: one tiny 2-process tcp arm, exactly-once verified.
    const auto arm = run_tcp_arm(argv[0], 4096, 2, /*rounds=*/100);
    print_transport_arm(arm);
    return (arm.delivered == 200 && arm.exactly_once) ? 0 : 1;
  }

  if (argc > 1 && std::strcmp(argv[1], "--transport") == 0) {
    // E17: in-proc channel vs TCP transport on the same grid as E16.
    std::vector<TransportArm> arms;
    bool all_exactly_once = true;
    for (const std::size_t body : {std::size_t{256}, std::size_t{4096},
                                   std::size_t{65536}}) {
      for (const int fanout : {1, 8}) {
        const int rounds = body >= 65536 ? 1500 : (body >= 4096 ? 4000 : 8000);
        const auto inproc =
            as_inproc_arm(run_arm(/*zero_copy=*/true, body, fanout, rounds));
        print_transport_arm(inproc);
        arms.push_back(inproc);
        const auto tcp = run_tcp_arm(argv[0], body, fanout, rounds);
        print_transport_arm(tcp);
        arms.push_back(tcp);
        all_exactly_once = all_exactly_once && tcp.exactly_once;
      }
    }

    double inproc_4k_f8 = 0.0, tcp_4k_f8 = 0.0;
    std::uint64_t tcp_4k_f8_rtt_p50 = 0;
    for (const auto& a : arms) {
      if (a.body_bytes == 4096 && a.fanout == 8) {
        if (std::strcmp(a.transport, "tcp") == 0) {
          tcp_4k_f8 = a.msgs_per_sec;
          tcp_4k_f8_rtt_p50 = a.ack_rtt_p50_us;
        } else {
          inproc_4k_f8 = a.msgs_per_sec;
        }
      }
    }
    const double tax = tcp_4k_f8 > 0.0 ? inproc_4k_f8 / tcp_4k_f8 : 0.0;

    std::ofstream out("BENCH_transport.json");
    out << "{\"bench\": \"transport\", \"store\": \"memory\", "
        << "\"window\": 256, \"arms\": [";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (i > 0) out << ", ";
      transport_arm_json(out, arms[i]);
    }
    out << "], \"headline\": {\"body_bytes\": 4096, \"fanout\": 8, "
        << "\"inproc_msgs_per_sec\": " << inproc_4k_f8
        << ", \"tcp_msgs_per_sec\": " << tcp_4k_f8
        << ", \"transport_tax\": " << tax
        << ", \"tcp_ack_rtt_p50_us\": " << tcp_4k_f8_rtt_p50
        << ", \"all_arms_exactly_once\": "
        << (all_exactly_once ? "true" : "false") << "}}\n";
    std::cout << "BENCH_transport.json: 4KiB fanout-8 transport tax = " << tax
              << "x (inproc/tcp), exactly_once="
              << (all_exactly_once ? "yes" : "NO") << "\n";
    return all_exactly_once ? 0 : 1;
  }

  if (smoke) {
    const auto r = run_arm(/*zero_copy=*/true, 4096, 2, /*rounds=*/100);
    print_arm(r);
    // Liveness gate: full delivery and a working frame cache.
    return (r.delivered == 200 && r.hit_rate > 0.5) ? 0 : 1;
  }

  std::vector<ArmResult> results;
  for (const std::size_t body : {std::size_t{256}, std::size_t{4096},
                                 std::size_t{65536}}) {
    for (const int fanout : {1, 8}) {
      // Keep per-arm wall clock comparable across body sizes.
      const int rounds = body >= 65536 ? 1500 : (body >= 4096 ? 4000 : 8000);
      for (const bool zero_copy : {false, true}) {
        const auto r = run_arm(zero_copy, body, fanout, rounds);
        print_arm(r);
        results.push_back(r);
      }
    }
  }

  double deep_64k_f8 = 0.0, zero_64k_f8 = 0.0, zero_64k_f8_hit = 0.0;
  for (const auto& r : results) {
    if (r.body_bytes == 65536 && r.fanout == 8) {
      if (std::strcmp(r.mode, "zero_copy") == 0) {
        zero_64k_f8 = r.msgs_per_sec;
        zero_64k_f8_hit = r.hit_rate;
      } else {
        deep_64k_f8 = r.msgs_per_sec;
      }
    }
  }
  const double speedup = deep_64k_f8 > 0.0 ? zero_64k_f8 / deep_64k_f8 : 0.0;

  std::ofstream out("BENCH_msg_path.json");
  out << "{\"bench\": \"msg_path\", \"store\": \"memory\", \"arms\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) out << ", ";
    out << "{\"mode\": \"" << r.mode << "\", \"body_bytes\": " << r.body_bytes
        << ", \"fanout\": " << r.fanout
        << ", \"delivered_msgs_per_sec\": " << r.msgs_per_sec
        << ", \"delivered\": " << r.delivered
        << ", \"duration_s\": " << r.duration_s
        << ", \"serializations\": " << r.serializations
        << ", \"serializations_per_msg\": "
        << (r.delivered > 0
                ? static_cast<double>(r.serializations) / r.delivered
                : 0.0)
        << ", \"frame_cache_hits\": " << r.cache_hits
        << ", \"frame_cache_misses\": " << r.cache_misses
        << ", \"frame_cache_fills\": " << r.cache_fills
        << ", \"frame_cache_patches\": " << r.cache_patches
        << ", \"frame_cache_hit_rate\": " << r.hit_rate << "}";
  }
  out << "], \"headline\": {\"body_bytes\": 65536, \"fanout\": 8, "
      << "\"deep_copy_msgs_per_sec\": " << deep_64k_f8
      << ", \"zero_copy_msgs_per_sec\": " << zero_64k_f8
      << ", \"speedup\": " << speedup
      << ", \"zero_copy_frame_cache_hit_rate\": " << zero_64k_f8_hit << "}}\n";
  std::cout << "BENCH_msg_path.json: 64KiB fanout-8 speedup = " << speedup
            << "x, hit_rate = " << zero_64k_f8_hit << "\n";
  return 0;
}
