// E16 — zero-copy message core A/B on the full persistent delivery path.
//
// Closed-loop, two queue managers joined by a channel: each round fans one
// body out to `fanout` destination queues on the remote manager (persistent
// messages, MemoryStore on both sides — the store exercises the complete
// encode-per-append path without disk noise), then blocks until all copies
// arrive. The A/B arms run in ONE binary via set_zero_copy_enabled():
//
//   zero_copy  — shared payloads, flat property bags, memoized frames
//   deep_copy  — every Message copy duplicates the body and every encode
//                re-serializes (the seed's behaviour)
//
// Grid: body 256 B / 4 KiB / 64 KiB x fanout 1 / 8. Reported per arm:
// delivered msgs/sec, serializations per delivered message, and the
// frame-cache counters; hit_rate = (hits + patches) / (hits + patches +
// misses). Headline (the acceptance gate): fanout 8 x 64 KiB zero_copy
// must deliver >= 2x the deep_copy arm's msgs/sec, with a persistent-path
// frame-cache hit rate > 90%.
//
// Writes BENCH_msg_path.json into the working directory (skipped with
// --smoke, which runs one tiny zero-copy arm as a CI liveness check).
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mq/network.hpp"
#include "mq/payload.hpp"
#include "mq/queue_manager.hpp"
#include "mq/store.hpp"
#include "obs/registry.hpp"

namespace {

using namespace cmx;

struct ArmResult {
  const char* mode;
  std::size_t body_bytes;
  int fanout;
  std::uint64_t delivered = 0;
  double duration_s = 0.0;
  double msgs_per_sec = 0.0;
  std::uint64_t serializations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_patches = 0;
  double hit_rate = 0.0;
};

std::uint64_t counter_value(const obs::MetricsRegistry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

ArmResult run_arm(bool zero_copy, std::size_t body_bytes, int fanout,
                  int rounds) {
  mq::set_zero_copy_enabled(zero_copy);

  util::SystemClock clock;
  mq::QueueManager qm1("QM1", clock, std::make_unique<mq::MemoryStore>());
  mq::QueueManager qm2("QM2", clock, std::make_unique<mq::MemoryStore>());
  std::vector<std::string> dests;
  for (int i = 0; i < fanout; ++i) {
    dests.push_back("DEST" + std::to_string(i));
    qm2.create_queue(dests.back()).expect_ok("create dest");
  }
  mq::Network net;
  net.add(qm1);
  net.add(qm2);

  const std::string body(body_bytes, 'x');
  std::uint64_t delivered = 0;

  // Warmup: a few fully-drained rounds before the timer so thread spin-up
  // and the clock's first-millisecond cold start (put_time_ms 0 reads as
  // "unset" and gets re-stamped on arrival) don't pollute either arm.
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<mq::QueueAddress, mq::Message>> warm;
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg{std::string(body_bytes, 'w')};
      msg.set_persistence(mq::Persistence::kPersistent);
      warm.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(warm)).expect_ok("warmup put");
    for (int i = 0; i < fanout; ++i) {
      qm2.get(dests[i], 30'000).status().expect_ok("warmup get");
    }
  }
  // The clock reads 0 for its first millisecond; a message stamped then
  // looks "unset" (put_time_ms 0) and is re-stamped on arrival, which
  // invalidates its cached frame. Start the timed run past that edge.
  clock.sleep_ms(2);
  obs::MetricsRegistry::instance().reset();

  // Closed loop with a bounded window: the producer keeps at most
  // kWindow messages in flight (xmit queue + channel + destination
  // queues) while a consumer thread drains the far side. The window makes
  // the measurement throughput-bound — pure ping-pong per round would
  // measure channel hand-off latency, which both arms share — while still
  // preventing unbounded queue growth.
  constexpr int kWindow = 256;
  std::mutex window_mu;
  std::condition_variable window_cv;
  int outstanding = 0;

  const auto t0 = std::chrono::steady_clock::now();
  std::thread consumer([&] {
    for (int round = 0; round < rounds; ++round) {
      for (int i = 0; i < fanout; ++i) {
        auto got = qm2.get(dests[i], 30'000);
        got.status().expect_ok("delivery");
        ++delivered;
        {
          std::lock_guard<std::mutex> lk(window_mu);
          --outstanding;
        }
        window_cv.notify_one();
      }
    }
  });
  for (int round = 0; round < rounds; ++round) {
    {
      std::unique_lock<std::mutex> lk(window_mu);
      window_cv.wait(lk, [&] { return outstanding + fanout <= kWindow; });
      outstanding += fanout;
    }
    // One shared payload per round: under zero_copy the fan-out legs all
    // reference it; under deep_copy each Message copy duplicates it.
    const mq::Payload payload{body};
    std::vector<std::pair<mq::QueueAddress, mq::Message>> puts;
    puts.reserve(fanout);
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg(payload);
      msg.set_persistence(mq::Persistence::kPersistent);
      puts.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(puts)).expect_ok("fanout put");
  }
  consumer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  net.shutdown();

  const auto snap = obs::MetricsRegistry::instance().snapshot();
  ArmResult r;
  r.mode = zero_copy ? "zero_copy" : "deep_copy";
  r.body_bytes = body_bytes;
  r.fanout = fanout;
  r.delivered = delivered;
  r.duration_s = elapsed;
  r.msgs_per_sec = elapsed > 0.0 ? delivered / elapsed : 0.0;
  r.serializations = counter_value(snap, "mq.msg.serializations");
  r.cache_hits = counter_value(snap, "mq.msg.frame_cache_hits");
  r.cache_misses = counter_value(snap, "mq.msg.frame_cache_misses");
  r.cache_fills = counter_value(snap, "mq.msg.frame_cache_fills");
  r.cache_patches = counter_value(snap, "mq.msg.frame_cache_patches");
  const double served = static_cast<double>(r.cache_hits + r.cache_patches);
  const double demand = served + static_cast<double>(r.cache_misses);
  r.hit_rate = demand > 0.0 ? served / demand : 0.0;
  return r;
}

void print_arm(const ArmResult& r) {
  std::cout << r.mode << " body=" << r.body_bytes << "B fanout=" << r.fanout
            << ": " << static_cast<std::uint64_t>(r.msgs_per_sec)
            << " msgs/s (" << r.delivered << " in " << r.duration_s << "s), "
            << (r.delivered > 0
                    ? static_cast<double>(r.serializations) / r.delivered
                    : 0.0)
            << " serializations/msg, hit_rate=" << r.hit_rate
            << " (hits=" << r.cache_hits << " misses=" << r.cache_misses
            << " fills=" << r.cache_fills << " patches=" << r.cache_patches
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  obs::set_enabled(true);

  if (smoke) {
    const auto r = run_arm(/*zero_copy=*/true, 4096, 2, /*rounds=*/100);
    print_arm(r);
    // Liveness gate: full delivery and a working frame cache.
    return (r.delivered == 200 && r.hit_rate > 0.5) ? 0 : 1;
  }

  std::vector<ArmResult> results;
  for (const std::size_t body : {std::size_t{256}, std::size_t{4096},
                                 std::size_t{65536}}) {
    for (const int fanout : {1, 8}) {
      // Keep per-arm wall clock comparable across body sizes.
      const int rounds = body >= 65536 ? 1500 : (body >= 4096 ? 4000 : 8000);
      for (const bool zero_copy : {false, true}) {
        const auto r = run_arm(zero_copy, body, fanout, rounds);
        print_arm(r);
        results.push_back(r);
      }
    }
  }

  double deep_64k_f8 = 0.0, zero_64k_f8 = 0.0, zero_64k_f8_hit = 0.0;
  for (const auto& r : results) {
    if (r.body_bytes == 65536 && r.fanout == 8) {
      if (std::strcmp(r.mode, "zero_copy") == 0) {
        zero_64k_f8 = r.msgs_per_sec;
        zero_64k_f8_hit = r.hit_rate;
      } else {
        deep_64k_f8 = r.msgs_per_sec;
      }
    }
  }
  const double speedup = deep_64k_f8 > 0.0 ? zero_64k_f8 / deep_64k_f8 : 0.0;

  std::ofstream out("BENCH_msg_path.json");
  out << "{\"bench\": \"msg_path\", \"store\": \"memory\", \"arms\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) out << ", ";
    out << "{\"mode\": \"" << r.mode << "\", \"body_bytes\": " << r.body_bytes
        << ", \"fanout\": " << r.fanout
        << ", \"delivered_msgs_per_sec\": " << r.msgs_per_sec
        << ", \"delivered\": " << r.delivered
        << ", \"duration_s\": " << r.duration_s
        << ", \"serializations\": " << r.serializations
        << ", \"serializations_per_msg\": "
        << (r.delivered > 0
                ? static_cast<double>(r.serializations) / r.delivered
                : 0.0)
        << ", \"frame_cache_hits\": " << r.cache_hits
        << ", \"frame_cache_misses\": " << r.cache_misses
        << ", \"frame_cache_fills\": " << r.cache_fills
        << ", \"frame_cache_patches\": " << r.cache_patches
        << ", \"frame_cache_hit_rate\": " << r.hit_rate << "}";
  }
  out << "], \"headline\": {\"body_bytes\": 65536, \"fanout\": 8, "
      << "\"deep_copy_msgs_per_sec\": " << deep_64k_f8
      << ", \"zero_copy_msgs_per_sec\": " << zero_64k_f8
      << ", \"speedup\": " << speedup
      << ", \"zero_copy_frame_cache_hit_rate\": " << zero_64k_f8_hit << "}}\n";
  std::cout << "BENCH_msg_path.json: 64KiB fanout-8 speedup = " << speedup
            << "x, hit_rate = " << zero_64k_f8_hit << "\n";
  return 0;
}
