// E16 — zero-copy message core A/B on the full persistent delivery path.
//
// Closed-loop, two queue managers joined by a channel: each round fans one
// body out to `fanout` destination queues on the remote manager (persistent
// messages, MemoryStore on both sides — the store exercises the complete
// encode-per-append path without disk noise), then blocks until all copies
// arrive. The A/B arms run in ONE binary via set_zero_copy_enabled():
//
//   zero_copy  — shared payloads, flat property bags, memoized frames
//   deep_copy  — every Message copy duplicates the body and every encode
//                re-serializes (the seed's behaviour)
//
// E18 — small-message fast path: a third toggle dimension,
// util::set_arena_enabled(), layers inline payloads (bodies <= 64 B live
// in the Message, no heap) and freelist arenas (pooled encode frames +
// shared_ptr control blocks, pooled queue map nodes) on top of zero_copy:
//
//   fast_path  — zero_copy + arenas (the production default)
//
// The binary overrides global operator new/delete with a counting shim, so
// every arm also reports allocs_per_msg: heap allocations per delivered
// message across ALL threads (producer, consumer, channel mover, store).
//
// Grid: body 256 B / 1 KiB x fanout 1 / 8 over all four toggle combos
// (the small-message rows the arena targets), plus 4 KiB / 64 KiB over
// deep_copy / zero_copy / fast_path. Reported per arm: delivered msgs/sec,
// serializations per delivered message, allocs_per_msg, the frame-cache
// counters, and the arena hit rate. Headlines: fanout 8 x 64 KiB
// zero_copy must deliver >= 2x deep_copy (E16's gate, unchanged), and
// fanout 8 x 256 B fast_path must deliver >= 1.3x zero_copy (E18's gate).
//
// E19 — storage-engine dimension: the same closed loop re-run with both
// queue managers on registry-built stores (--store spec grammar,
// DESIGN.md §11) instead of the in-memory engine: memory vs file
// (group commit) vs segmented, the durable pair at equal durability
// (sync=every_batch on both) so the store rows answer "what does real
// durability cost on the full delivery path, and does the segmented
// layout give it back". Store arms run the fast_path toggles.
//
// E20 — selective consumers (--selective / --selective-smoke): K consumers
// parked on disjoint `grp = 'gN'` selectors over one queue, all traffic
// aimed at g0, with the selector-waiter index (DESIGN.md §12) on vs off,
// K in {1, 16, 64, 256}. Also gates the zero-allocation LIKE/IN matcher
// (allocs per Selector::matches must be 0). Writes BENCH_selective.json.
//
// Writes BENCH_msg_path.json into the working directory (skipped with
// --smoke, which runs one tiny fast-path arm as a CI liveness check and
// asserts the per-message allocation budget; --smoke --store BACKEND
// re-targets that arm at a durable engine as the CI durable-arm gate,
// without the allocation budget — disk engines allocate per append).
//
// E17 — transport A/B (--transport): the same windowed closed loop and
// grid, but the arms compare WHERE the remote queue manager lives:
//
//   inproc — both managers in this process, in-process Channel (E16's
//            zero-copy arm re-run as the baseline)
//   tcp    — the receiving manager in a CHILD PROCESS (fork+exec of this
//            binary with --child), joined by a TransportChannel /
//            TransportServer pair over loopback TCP
//
// The child drains the destination queues and reports (delivered,
// distinct message ids) back over a pipe, so every tcp arm doubles as an
// exactly-once check. Latency is sender-side ack RTT (transport.ack_rtt_us)
// — one-way transit is unmeasurable across processes because SystemClock
// epochs are per-process (docs/PROTOCOL.md §8). Writes
// BENCH_transport.json; --transport-smoke runs one tiny tcp arm as the CI
// 2-process liveness check.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <new>

#include "mq/network.hpp"
#include "mq/payload.hpp"
#include "mq/queue_manager.hpp"
#include "mq/selector.hpp"
#include "mq/selector_index.hpp"
#include "mq/store.hpp"
#include "mq/transport/transport_channel.hpp"
#include "mq/transport/transport_server.hpp"
#include "obs/registry.hpp"
#include "util/arena.hpp"

// ---- allocation accounting ------------------------------------------------
// Counting shims over the global allocator: every heap allocation in the
// process bumps one relaxed atomic, so an arm's allocs_per_msg is the
// counter delta across the timed loop divided by delivered messages —
// covering the producer, consumer, channel mover and store threads alike.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cmx;

struct ArmResult {
  const char* mode;
  std::string store = "memory";  // engine label: memory | file | segmented
  std::size_t body_bytes;
  int fanout;
  std::uint64_t delivered = 0;
  double duration_s = 0.0;
  double msgs_per_sec = 0.0;
  std::uint64_t serializations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_patches = 0;
  double hit_rate = 0.0;
  std::uint64_t allocs = 0;
  double allocs_per_msg = 0.0;
  std::uint64_t arena_hits = 0;
  std::uint64_t arena_misses = 0;
  double arena_hit_rate = 0.0;
};

const char* mode_name(bool zero_copy, bool arena) {
  if (zero_copy) return arena ? "fast_path" : "zero_copy";
  return arena ? "deep_copy_arena" : "deep_copy";
}

std::uint64_t counter_value(const obs::MetricsRegistry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

// Registry spec for one side of a store arm. Bare "memory" needs no path;
// the disk engines get a fresh per-arm directory/file under /tmp and run
// at sync=every_batch — the equal-durability setting of the store grid.
std::string store_spec(const std::string& backend, const std::string& path) {
  if (backend == "file") return "file:" + path + "?sync=every_batch";
  if (backend == "segmented") return "segmented:" + path + "?sync=every_batch";
  return backend;  // "memory", or a full user-provided spec
}

ArmResult run_arm(bool zero_copy, bool arena, std::size_t body_bytes,
                  int fanout, int rounds,
                  const std::string& store_backend = "memory") {
  mq::set_zero_copy_enabled(zero_copy);
  util::set_arena_enabled(arena);

  // Per-arm store paths (unused by "memory"): wiped before AND after so a
  // later arm never replays this one's log.
  static std::atomic<int> arm_seq{0};
  const std::string stem = "/tmp/cmx_bench_msgpath_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(arm_seq.fetch_add(1));
  const bool on_disk = store_backend != "memory";
  const std::string path1 = stem + "_a", path2 = stem + "_b";
  if (on_disk) {
    std::filesystem::remove_all(path1);
    std::filesystem::remove_all(path2);
  }

  util::SystemClock clock;
  mq::QueueManagerOptions qm_options;
  qm_options.store = store_spec(store_backend, path1);
  mq::QueueManager qm1("QM1", clock, nullptr, qm_options);
  qm_options.store = store_spec(store_backend, path2);
  mq::QueueManager qm2("QM2", clock, nullptr, qm_options);
  std::vector<std::string> dests;
  for (int i = 0; i < fanout; ++i) {
    dests.push_back("DEST" + std::to_string(i));
    qm2.create_queue(dests.back()).expect_ok("create dest");
  }
  mq::Network net;
  // Batch the channel hop like a tuned deployment would: a 64-message
  // drain amortizes the mover's wakeup, consumption log and remote store
  // append across the window (both arms share the setting).
  net.set_default_channel_options(mq::ChannelOptions{.max_batch = 64});
  net.add(qm1);
  net.add(qm2);

  const std::string body(body_bytes, 'x');
  std::atomic<std::uint64_t> delivered{0};

  // Warmup: a few fully-drained rounds before the timer so thread spin-up
  // and the clock's first-millisecond cold start (put_time_ms 0 reads as
  // "unset" and gets re-stamped on arrival) don't pollute either arm.
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<mq::QueueAddress, mq::Message>> warm;
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg{std::string(body_bytes, 'w')};
      msg.set_persistence(mq::Persistence::kPersistent);
      warm.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(warm)).expect_ok("warmup put");
    for (int i = 0; i < fanout; ++i) {
      qm2.get(dests[i], 30'000).status().expect_ok("warmup get");
    }
  }
  // The clock reads 0 for its first millisecond; a message stamped then
  // looks "unset" (put_time_ms 0) and is re-stamped on arrival, which
  // invalidates its cached frame. Start the timed run past that edge.
  clock.sleep_ms(2);
  obs::MetricsRegistry::instance().reset();
  util::reset_arena_stats();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);

  // Closed loop with a bounded window: the producer keeps at most
  // kWindow messages in flight (xmit queue + channel + destination
  // queues) while a consumer thread drains the far side. The window makes
  // the measurement throughput-bound — pure ping-pong per round would
  // measure channel hand-off latency, which both arms share — while still
  // preventing unbounded queue growth.
  constexpr int kWindow = 256;
  std::mutex window_mu;
  std::condition_variable window_cv;
  std::atomic<int> outstanding{0};

  const auto t0 = std::chrono::steady_clock::now();
  // The consumer drains each destination with get_batch — the throughput
  // consumption shape (one queue lock and one batched consumption-log
  // append per drain, like the cm ack router) — falling back to a
  // blocking get when a queue is momentarily empty.
  std::thread consumer([&] {
    std::vector<std::uint64_t> taken(static_cast<std::size_t>(fanout), 0);
    const std::uint64_t per_queue = static_cast<std::uint64_t>(rounds);
    std::uint64_t total = 0;
    const std::uint64_t want = per_queue * static_cast<std::uint64_t>(fanout);
    while (total < want) {
      std::uint64_t progress = 0;
      for (int i = 0; i < fanout; ++i) {
        auto& got_n = taken[static_cast<std::size_t>(i)];
        if (got_n >= per_queue) continue;
        auto msgs = qm2.get_batch(
            dests[i], static_cast<std::size_t>(per_queue - got_n));
        if (msgs.empty()) continue;
        got_n += msgs.size();
        total += msgs.size();
        progress += msgs.size();
        delivered.fetch_add(msgs.size(), std::memory_order_relaxed);
        // Lock-free decrement; nudge the producer only when this drain
        // opened window room (edge-triggered — it only ever sleeps on a
        // full window, and its wait is timed as a backstop).
        const int prev = outstanding.fetch_sub(
            static_cast<int>(msgs.size()), std::memory_order_acq_rel);
        if (prev > kWindow - fanout &&
            prev - static_cast<int>(msgs.size()) <= kWindow - fanout) {
          window_cv.notify_one();
        }
      }
      if (progress == 0) {
        // All queues momentarily empty: block on the next expected one
        // instead of spinning.
        for (int i = 0; i < fanout; ++i) {
          if (taken[static_cast<std::size_t>(i)] < per_queue) {
            auto got = qm2.get(dests[i], 30'000);
            got.status().expect_ok("delivery");
            ++taken[static_cast<std::size_t>(i)];
            ++total;
            delivered.fetch_add(1, std::memory_order_relaxed);
            if (outstanding.fetch_sub(1, std::memory_order_acq_rel) - 1 ==
                kWindow - fanout) {
              window_cv.notify_one();
            }
            break;
          }
        }
      }
    }
  });
  for (int round = 0; round < rounds; ++round) {
    if (outstanding.load(std::memory_order_acquire) + fanout > kWindow) {
      std::unique_lock<std::mutex> lk(window_mu);
      while (outstanding.load(std::memory_order_acquire) + fanout > kWindow) {
        window_cv.wait_for(lk, std::chrono::milliseconds(1));
      }
    }
    outstanding.fetch_add(fanout, std::memory_order_acq_rel);
    // One shared payload per round: under zero_copy the fan-out legs all
    // reference it; under deep_copy each Message copy duplicates it.
    const mq::Payload payload{body};
    std::vector<std::pair<mq::QueueAddress, mq::Message>> puts;
    puts.reserve(fanout);
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg(payload);
      msg.set_persistence(mq::Persistence::kPersistent);
      puts.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(puts)).expect_ok("fanout put");
  }
  consumer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  net.shutdown();
  if (on_disk) {
    std::filesystem::remove_all(path1);
    std::filesystem::remove_all(path2);
  }

  const auto snap = obs::MetricsRegistry::instance().snapshot();
  const util::ArenaStats arena_totals = util::arena_stats();
  ArmResult r;
  r.mode = mode_name(zero_copy, arena);
  r.store = store_backend;
  r.body_bytes = body_bytes;
  r.fanout = fanout;
  r.delivered = delivered;
  r.duration_s = elapsed;
  r.msgs_per_sec = elapsed > 0.0 ? delivered / elapsed : 0.0;
  r.serializations = counter_value(snap, "mq.msg.serializations");
  r.cache_hits = counter_value(snap, "mq.msg.frame_cache_hits");
  r.cache_misses = counter_value(snap, "mq.msg.frame_cache_misses");
  r.cache_fills = counter_value(snap, "mq.msg.frame_cache_fills");
  r.cache_patches = counter_value(snap, "mq.msg.frame_cache_patches");
  const double served = static_cast<double>(r.cache_hits + r.cache_patches);
  const double demand = served + static_cast<double>(r.cache_misses);
  r.hit_rate = demand > 0.0 ? served / demand : 0.0;
  r.allocs = allocs_after - allocs_before;
  r.allocs_per_msg =
      delivered > 0 ? static_cast<double>(r.allocs) / delivered : 0.0;
  r.arena_hits = arena_totals.hits;
  r.arena_misses = arena_totals.misses;
  const double arena_demand =
      static_cast<double>(arena_totals.hits + arena_totals.misses);
  r.arena_hit_rate =
      arena_demand > 0.0 ? arena_totals.hits / arena_demand : 0.0;
  // Export the fast-path health figures through the obs registry too, so
  // registry dumps carry them alongside the frame-cache counters.
  obs::MetricsRegistry::instance()
      .gauge("mq.msg.allocs_per_msg_milli")
      .set(static_cast<std::int64_t>(r.allocs_per_msg * 1000.0));
  obs::MetricsRegistry::instance()
      .gauge("mq.msg.arena_hit_rate_permille")
      .set(static_cast<std::int64_t>(r.arena_hit_rate * 1000.0));
  return r;
}

// ---- E17: transport A/B ---------------------------------------------------

struct TransportArm {
  const char* transport;  // "inproc" or "tcp"
  std::size_t body_bytes;
  int fanout;
  std::uint64_t delivered = 0;
  double duration_s = 0.0;
  double msgs_per_sec = 0.0;
  double serializations_per_msg = 0.0;
  // tcp-only fields (0 for inproc):
  std::uint64_t ack_rtt_p50_us = 0;
  std::uint64_t ack_rtt_p95_us = 0;
  std::uint64_t ack_rtt_p99_us = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t batches = 0;
  std::uint64_t retransmitted = 0;
  bool exactly_once = true;
};

// Child-process receiver: one queue manager + transport server. Writes
// its port to `pipe_fd`, drains `expected` messages round-major across
// the fanout queues, then reports "<delivered> <distinct ids>" on the
// same pipe — the parent's exactly-once verification.
int run_child(int fanout, std::uint64_t expected, int pipe_fd) {
  obs::set_enabled(true);
  mq::set_zero_copy_enabled(true);
  util::SystemClock clock;
  mq::QueueManager qm2("QM2", clock, std::make_unique<mq::MemoryStore>());
  std::vector<std::string> dests;
  for (int i = 0; i < fanout; ++i) {
    dests.push_back("DEST" + std::to_string(i));
    qm2.create_queue(dests.back()).expect_ok("create dest");
  }
  mq::transport::TransportServer server(qm2);
  server.start().expect_ok("child server start");
  dprintf(pipe_fd, "%u\n", server.port());

  std::uint64_t delivered = 0;
  std::set<std::string> ids;
  const std::uint64_t per_queue = expected / fanout;
  for (std::uint64_t round = 0; round < per_queue; ++round) {
    for (int i = 0; i < fanout; ++i) {
      auto got = qm2.get(dests[i], 120'000);
      got.status().expect_ok("child delivery");
      ++delivered;
      ids.insert(got.value().id());
    }
  }
  dprintf(pipe_fd, "%llu %llu\n",
          static_cast<unsigned long long>(delivered),
          static_cast<unsigned long long>(ids.size()));
  server.stop();
  return 0;
}

TransportArm run_tcp_arm(const char* argv0, std::size_t body_bytes,
                         int fanout, int rounds) {
  constexpr int kWarmupRounds = 10;
  constexpr std::uint64_t kWindow = 256;  // matches the in-proc closed loop
  const std::uint64_t warm_total =
      static_cast<std::uint64_t>(kWarmupRounds) * fanout;
  const std::uint64_t total =
      static_cast<std::uint64_t>(rounds + kWarmupRounds) * fanout;

  int pipefd[2];
  if (pipe(pipefd) != 0) {
    std::cerr << "pipe failed\n";
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid == 0) {
    ::close(pipefd[0]);
    execl(argv0, argv0, "--child", std::to_string(fanout).c_str(),
          std::to_string(total).c_str(), std::to_string(pipefd[1]).c_str(),
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ::close(pipefd[1]);
  FILE* from_child = fdopen(pipefd[0], "r");
  unsigned port = 0;
  if (fscanf(from_child, "%u", &port) != 1 || port == 0) {
    std::cerr << "child failed to report a port\n";
    std::exit(1);
  }

  mq::set_zero_copy_enabled(true);
  util::SystemClock clock;
  mq::QueueManager qm1("QM1", clock, std::make_unique<mq::MemoryStore>());
  mq::Network net;
  net.add(qm1);
  mq::transport::TransportChannelOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.window = kWindow;  // channel flow control IS the loop window
  net.add_remote(qm1, "QM2", options).expect_ok("add_remote");
  auto* channel = net.transport_channel("QM1", "QM2");

  std::vector<std::string> dests;
  for (int i = 0; i < fanout; ++i) dests.push_back("DEST" + std::to_string(i));
  const std::string body(body_bytes, 'x');
  std::uint64_t sent = 0;
  auto produce_round = [&] {
    const mq::Payload payload{body};
    std::vector<std::pair<mq::QueueAddress, mq::Message>> puts;
    puts.reserve(fanout);
    for (int i = 0; i < fanout; ++i) {
      mq::Message msg(payload);
      msg.set_persistence(mq::Persistence::kPersistent);
      puts.emplace_back(mq::QueueAddress("QM2", dests[i]), std::move(msg));
    }
    qm1.put_all(std::move(puts)).expect_ok("tcp fanout put");
    sent += fanout;
    // Closed loop: never run more than kWindow ahead of the acks.
    if (sent > kWindow && !channel->wait_for_acked(sent - kWindow, 120'000)) {
      std::cerr << "ack window stalled\n";
      std::exit(1);
    }
  };

  for (int round = 0; round < kWarmupRounds; ++round) produce_round();
  if (!channel->wait_for_acked(warm_total, 120'000)) {
    std::cerr << "warmup not acked\n";
    std::exit(1);
  }
  obs::MetricsRegistry::instance().reset();
  const auto stats_before = channel->stats();

  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) produce_round();
  if (!channel->wait_for_acked(total, 120'000)) {
    std::cerr << "run not acked\n";
    std::exit(1);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats_after = channel->stats();

  unsigned long long child_delivered = 0, child_unique = 0;
  if (fscanf(from_child, "%llu %llu", &child_delivered, &child_unique) != 2) {
    std::cerr << "child failed to report results\n";
    std::exit(1);
  }
  fclose(from_child);
  int child_status = 0;
  waitpid(pid, &child_status, 0);
  net.shutdown();

  const auto snap = obs::MetricsRegistry::instance().snapshot();
  TransportArm arm;
  arm.transport = "tcp";
  arm.body_bytes = body_bytes;
  arm.fanout = fanout;
  arm.delivered = static_cast<std::uint64_t>(rounds) * fanout;
  arm.duration_s = elapsed;
  arm.msgs_per_sec = elapsed > 0.0 ? arm.delivered / elapsed : 0.0;
  const auto serializations = counter_value(snap, "mq.msg.serializations");
  arm.serializations_per_msg =
      arm.delivered > 0 ? static_cast<double>(serializations) / arm.delivered
                        : 0.0;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "transport.ack_rtt_us") {
      arm.ack_rtt_p50_us = hist.p50();
      arm.ack_rtt_p95_us = hist.p95();
      arm.ack_rtt_p99_us = hist.p99();
    }
  }
  arm.bytes_sent = stats_after.bytes_sent - stats_before.bytes_sent;
  arm.batches = stats_after.batches - stats_before.batches;
  arm.retransmitted = stats_after.retransmitted - stats_before.retransmitted;
  arm.exactly_once = child_delivered == total && child_unique == total &&
                     WIFEXITED(child_status) && WEXITSTATUS(child_status) == 0;
  if (!arm.exactly_once) {
    std::cerr << "exactly-once VIOLATED: expected " << total << ", child saw "
              << child_delivered << " (" << child_unique << " unique)\n";
  }
  return arm;
}

TransportArm as_inproc_arm(const ArmResult& r) {
  TransportArm arm;
  arm.transport = "inproc";
  arm.body_bytes = r.body_bytes;
  arm.fanout = r.fanout;
  arm.delivered = r.delivered;
  arm.duration_s = r.duration_s;
  arm.msgs_per_sec = r.msgs_per_sec;
  arm.serializations_per_msg =
      r.delivered > 0 ? static_cast<double>(r.serializations) / r.delivered
                      : 0.0;
  return arm;
}

void print_transport_arm(const TransportArm& a) {
  std::cout << a.transport << " body=" << a.body_bytes
            << "B fanout=" << a.fanout << ": "
            << static_cast<std::uint64_t>(a.msgs_per_sec) << " msgs/s ("
            << a.delivered << " in " << a.duration_s << "s), "
            << a.serializations_per_msg << " serializations/msg";
  if (std::strcmp(a.transport, "tcp") == 0) {
    std::cout << ", ack_rtt p50/p95/p99 = " << a.ack_rtt_p50_us << "/"
              << a.ack_rtt_p95_us << "/" << a.ack_rtt_p99_us << " us, "
              << a.bytes_sent << " bytes, " << a.batches << " batches"
              << ", exactly_once=" << (a.exactly_once ? "yes" : "NO");
  }
  std::cout << "\n";
}

void transport_arm_json(std::ostream& out, const TransportArm& a) {
  out << "{\"transport\": \"" << a.transport
      << "\", \"body_bytes\": " << a.body_bytes << ", \"fanout\": " << a.fanout
      << ", \"delivered_msgs_per_sec\": " << a.msgs_per_sec
      << ", \"delivered\": " << a.delivered
      << ", \"duration_s\": " << a.duration_s
      << ", \"serializations_per_msg\": " << a.serializations_per_msg;
  if (std::strcmp(a.transport, "tcp") == 0) {
    out << ", \"ack_rtt_p50_us\": " << a.ack_rtt_p50_us
        << ", \"ack_rtt_p95_us\": " << a.ack_rtt_p95_us
        << ", \"ack_rtt_p99_us\": " << a.ack_rtt_p99_us
        << ", \"bytes_sent\": " << a.bytes_sent
        << ", \"batches\": " << a.batches
        << ", \"retransmitted\": " << a.retransmitted
        << ", \"exactly_once\": " << (a.exactly_once ? "true" : "false");
  }
  out << "}";
}

// ---- E20: selective consumers and the selector-waiter index ---------------
//
// One queue, K consumers blocked on disjoint selectors (`grp = 'gN'`), all
// traffic targeted at g0. Without the index every put evaluates every
// parked waiter's selector; with it (DESIGN.md §12) the put probes the
// posting lists and wakes only the matching waiter, so throughput should
// hold roughly flat as K grows. Arms: K in {1, 16, 64, 256} x index
// on/off. Also reports allocs per LIKE/IN selector evaluation — the
// zero-allocation matcher gate (0 on the smoke arm).

struct SelectiveArm {
  bool index_on;
  int consumers;
  std::uint64_t delivered = 0;
  double duration_s = 0.0;
  double msgs_per_sec = 0.0;
  mq::SelectorIndex::Stats stats;
};

SelectiveArm run_selective_arm(bool index_on, int consumers, int rounds) {
  mq::set_selector_index_enabled(index_on);
  mq::set_zero_copy_enabled(true);
  util::set_arena_enabled(true);
  util::SystemClock clock;
  mq::QueueManager qm("QM", clock, std::make_unique<mq::MemoryStore>());
  qm.create_queue("SEL").expect_ok("create SEL");

  std::vector<mq::Selector> selectors;
  selectors.reserve(static_cast<std::size_t>(consumers));
  for (int i = 0; i < consumers; ++i) {
    auto parsed = mq::Selector::parse("grp = 'g" + std::to_string(i) + "'");
    parsed.status().expect_ok("parse selector");
    selectors.push_back(std::move(parsed).value());
  }

  // Decoys: one blocked get each on a selector no traffic matches until
  // the sentinel that releases them after the timed loop.
  std::vector<std::thread> decoys;
  for (int i = 1; i < consumers; ++i) {
    decoys.emplace_back([&, i] {
      qm.get("SEL", 120'000, &selectors[static_cast<std::size_t>(i)])
          .status()
          .expect_ok("decoy get");
    });
  }
  // Let the decoys park before the timer so every timed put sees all K
  // waiters registered.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto stats_before = qm.selector_waiter_stats();
  std::atomic<std::uint64_t> taken{0};
  std::thread target([&] {
    for (int i = 0; i < rounds; ++i) {
      qm.get("SEL", 120'000, &selectors[0]).status().expect_ok("target get");
      taken.fetch_add(1, std::memory_order_release);
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < rounds; ++i) {
    // Bounded window so the queue never grows without limit (and the
    // waiter index stays on the hot "parked consumer" path).
    while (static_cast<std::uint64_t>(i) -
               taken.load(std::memory_order_acquire) >=
           64) {
      std::this_thread::yield();
    }
    mq::Message msg{"x"};
    msg.set_property("grp", "g0");
    qm.put_local("SEL", std::move(msg)).expect_ok("put g0");
  }
  target.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats_after = qm.selector_waiter_stats();

  // Release the decoys, one sentinel each.
  for (int i = 1; i < consumers; ++i) {
    mq::Message msg{"bye"};
    msg.set_property("grp", "g" + std::to_string(i));
    qm.put_local("SEL", std::move(msg)).expect_ok("put sentinel");
  }
  for (auto& t : decoys) t.join();

  SelectiveArm arm;
  arm.index_on = index_on;
  arm.consumers = consumers;
  arm.delivered = taken.load();
  arm.duration_s = elapsed;
  arm.msgs_per_sec = elapsed > 0.0 ? arm.delivered / elapsed : 0.0;
  arm.stats.probes = stats_after.probes - stats_before.probes;
  arm.stats.index_hits = stats_after.index_hits - stats_before.index_hits;
  arm.stats.index_skips = stats_after.index_skips - stats_before.index_skips;
  arm.stats.residual_evals =
      stats_after.residual_evals - stats_before.residual_evals;
  arm.stats.fallback_evals =
      stats_after.fallback_evals - stats_before.fallback_evals;
  return arm;
}

// Allocations per Selector::matches() on a LIKE + IN expression — the
// string paths that used to copy per evaluation. Must be 0.
double like_in_allocs_per_match() {
  auto parsed =
      mq::Selector::parse("grp LIKE 'g%' AND region IN ('emea', 'us')");
  parsed.status().expect_ok("parse like/in");
  const mq::Selector selector = std::move(parsed).value();
  mq::Message msg{"x"};
  msg.set_property("grp", "g17");
  msg.set_property("region", "emea");
  volatile bool sink = false;
  for (int i = 0; i < 100; ++i) sink = selector.matches(msg);  // warm
  constexpr int kIters = 10000;
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < kIters; ++i) sink = selector.matches(msg);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  (void)sink;
  return static_cast<double>(after - before) / kIters;
}

void print_selective_arm(const SelectiveArm& a) {
  std::cout << "selective index=" << (a.index_on ? "on" : "off")
            << " consumers=" << a.consumers << ": "
            << static_cast<std::uint64_t>(a.msgs_per_sec) << " msgs/s ("
            << a.delivered << " in " << a.duration_s << "s), probes="
            << a.stats.probes << " hits=" << a.stats.index_hits
            << " skips=" << a.stats.index_skips
            << " residual=" << a.stats.residual_evals
            << " fallback=" << a.stats.fallback_evals << "\n";
}

void selective_arm_json(std::ostream& out, const SelectiveArm& a) {
  out << "{\"index\": " << (a.index_on ? "true" : "false")
      << ", \"consumers\": " << a.consumers
      << ", \"delivered_msgs_per_sec\": " << a.msgs_per_sec
      << ", \"delivered\": " << a.delivered
      << ", \"duration_s\": " << a.duration_s
      << ", \"probes\": " << a.stats.probes
      << ", \"index_hits\": " << a.stats.index_hits
      << ", \"index_skips\": " << a.stats.index_skips
      << ", \"residual_evals\": " << a.stats.residual_evals
      << ", \"fallback_evals\": " << a.stats.fallback_evals << "}";
}

void print_arm(const ArmResult& r) {
  std::cout << r.mode << " store=" << r.store << " body=" << r.body_bytes
            << "B fanout=" << r.fanout
            << ": " << static_cast<std::uint64_t>(r.msgs_per_sec)
            << " msgs/s (" << r.delivered << " in " << r.duration_s << "s), "
            << (r.delivered > 0
                    ? static_cast<double>(r.serializations) / r.delivered
                    : 0.0)
            << " serializations/msg, " << r.allocs_per_msg
            << " allocs/msg, hit_rate=" << r.hit_rate
            << " (hits=" << r.cache_hits << " misses=" << r.cache_misses
            << " fills=" << r.cache_fills << " patches=" << r.cache_patches
            << "), arena_hit_rate=" << r.arena_hit_rate << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  obs::set_enabled(true);

  if (argc > 1 && std::strcmp(argv[1], "--child") == 0) {
    // Receiver half of a tcp arm; spawned by run_tcp_arm, never by hand.
    if (argc < 5) return 2;
    return run_child(std::atoi(argv[2]),
                     std::strtoull(argv[3], nullptr, 10),
                     std::atoi(argv[4]));
  }

  if (argc > 1 && std::strcmp(argv[1], "--transport-smoke") == 0) {
    // CI liveness gate: one tiny 2-process tcp arm, exactly-once verified.
    const auto arm = run_tcp_arm(argv[0], 4096, 2, /*rounds=*/100);
    print_transport_arm(arm);
    return (arm.delivered == 200 && arm.exactly_once) ? 0 : 1;
  }

  if (argc > 1 && std::strcmp(argv[1], "--transport") == 0) {
    // E17: in-proc channel vs TCP transport on the same grid as E16.
    std::vector<TransportArm> arms;
    bool all_exactly_once = true;
    for (const std::size_t body : {std::size_t{256}, std::size_t{4096},
                                   std::size_t{65536}}) {
      for (const int fanout : {1, 8}) {
        const int rounds = body >= 65536 ? 1500 : (body >= 4096 ? 4000 : 8000);
        const auto inproc = as_inproc_arm(
            run_arm(/*zero_copy=*/true, /*arena=*/true, body, fanout, rounds));
        print_transport_arm(inproc);
        arms.push_back(inproc);
        const auto tcp = run_tcp_arm(argv[0], body, fanout, rounds);
        print_transport_arm(tcp);
        arms.push_back(tcp);
        all_exactly_once = all_exactly_once && tcp.exactly_once;
      }
    }

    double inproc_4k_f8 = 0.0, tcp_4k_f8 = 0.0;
    std::uint64_t tcp_4k_f8_rtt_p50 = 0;
    for (const auto& a : arms) {
      if (a.body_bytes == 4096 && a.fanout == 8) {
        if (std::strcmp(a.transport, "tcp") == 0) {
          tcp_4k_f8 = a.msgs_per_sec;
          tcp_4k_f8_rtt_p50 = a.ack_rtt_p50_us;
        } else {
          inproc_4k_f8 = a.msgs_per_sec;
        }
      }
    }
    const double tax = tcp_4k_f8 > 0.0 ? inproc_4k_f8 / tcp_4k_f8 : 0.0;

    std::ofstream out("BENCH_transport.json");
    out << "{\"bench\": \"transport\", \"store\": \"memory\", "
        << "\"window\": 256, \"arms\": [";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (i > 0) out << ", ";
      transport_arm_json(out, arms[i]);
    }
    out << "], \"headline\": {\"body_bytes\": 4096, \"fanout\": 8, "
        << "\"inproc_msgs_per_sec\": " << inproc_4k_f8
        << ", \"tcp_msgs_per_sec\": " << tcp_4k_f8
        << ", \"transport_tax\": " << tax
        << ", \"tcp_ack_rtt_p50_us\": " << tcp_4k_f8_rtt_p50
        << ", \"all_arms_exactly_once\": "
        << (all_exactly_once ? "true" : "false") << "}}\n";
    std::cout << "BENCH_transport.json: 4KiB fanout-8 transport tax = " << tax
              << "x (inproc/tcp), exactly_once="
              << (all_exactly_once ? "yes" : "NO") << "\n";
    return all_exactly_once ? 0 : 1;
  }

  if (argc > 1 && std::strcmp(argv[1], "--selective-smoke") == 0) {
    // CI gate for E20: with 64 parked selector consumers the index arm
    // must deliver everything, actually skip non-matching waiters, and
    // the LIKE/IN matcher must not allocate.
    const double allocs = like_in_allocs_per_match();
    std::cout << "like/in allocs per match: " << allocs << "\n";
    if (allocs != 0.0) {
      std::cerr << "selector matcher allocated (" << allocs
                << " allocs/match, budget 0)\n";
      return 1;
    }
    const auto on = run_selective_arm(/*index_on=*/true, 64, /*rounds=*/500);
    print_selective_arm(on);
    const auto off = run_selective_arm(/*index_on=*/false, 64, /*rounds=*/500);
    print_selective_arm(off);
    mq::set_selector_index_enabled(true);
    return (on.delivered == 500 && off.delivered == 500 &&
            on.stats.index_skips > 0 && off.stats.probes == 0)
               ? 0
               : 1;
  }

  if (argc > 1 && std::strcmp(argv[1], "--selective") == 0) {
    // E20: selective-consumer grid, K parked selector consumers x index
    // on/off. Writes BENCH_selective.json.
    const double allocs = like_in_allocs_per_match();
    std::cout << "like/in allocs per match: " << allocs << "\n";
    std::vector<SelectiveArm> arms;
    for (const int consumers : {1, 16, 64, 256}) {
      for (const bool index_on : {false, true}) {
        const auto arm = run_selective_arm(index_on, consumers,
                                           /*rounds=*/4000);
        print_selective_arm(arm);
        arms.push_back(arm);
      }
    }
    mq::set_selector_index_enabled(true);

    double on_256 = 0.0, off_256 = 0.0;
    for (const auto& a : arms) {
      if (a.consumers == 256) (a.index_on ? on_256 : off_256) = a.msgs_per_sec;
    }
    const double speedup = off_256 > 0.0 ? on_256 / off_256 : 0.0;

    std::ofstream out("BENCH_selective.json");
    out << "{\"bench\": \"selective\", \"window\": 64, "
        << "\"like_in_allocs_per_match\": " << allocs << ", \"arms\": [";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (i > 0) out << ", ";
      selective_arm_json(out, arms[i]);
    }
    out << "], \"headline\": {\"consumers\": 256, "
        << "\"index_on_msgs_per_sec\": " << on_256
        << ", \"index_off_msgs_per_sec\": " << off_256
        << ", \"speedup\": " << speedup << "}}\n";
    std::cout << "BENCH_selective.json: 256-consumer index speedup = "
              << speedup << "x\n";
    return 0;
  }

  if (argc > 1 && std::strcmp(argv[1], "--focus") == 0) {
    // Developer loop: just the E18 gate cell (256 B x fanout 8), both
    // arms, no JSON. Not part of CI.
    const int rounds = argc > 2 ? std::atoi(argv[2]) : 8000;
    const auto dump_hists = [] {
      const auto snap = obs::MetricsRegistry::instance().snapshot();
      for (const auto& [name, h] : snap.histograms) {
        std::cout << "    " << name << ": count=" << h.count
                  << " sum_us=" << h.sum << " p50=" << h.p50()
                  << " p95=" << h.p95() << "\n";
      }
      for (const auto& [name, v] : snap.counters) {
        std::cout << "    " << name << " = " << v << "\n";
      }
    };
    const auto zc = run_arm(/*zero_copy=*/true, /*arena=*/false, 256, 8, rounds);
    print_arm(zc);
    dump_hists();
    const auto fp = run_arm(/*zero_copy=*/true, /*arena=*/true, 256, 8, rounds);
    print_arm(fp);
    dump_hists();
    std::cout << "focus speedup = " << fp.msgs_per_sec / zc.msgs_per_sec
              << "x (allocs/msg " << zc.allocs_per_msg << " -> "
              << fp.allocs_per_msg << ")\n";
    return 0;
  }

  if (smoke) {
    // A 256 B body rides the inline-payload + arena fast path — the arm
    // the allocation budget below protects. The budget is a regression
    // tripwire, not a target: see BENCH_msg_path.json for measured values.
    // `--smoke --store file|segmented` re-targets the arm at a durable
    // engine (CI's durable-arm gate); the allocation budget then does not
    // apply — disk appends allocate — but delivery and cache still must.
    constexpr double kSmokeAllocBudget = 40.0;
    std::string store_backend = "memory";
    if (argc > 3 && std::strcmp(argv[2], "--store") == 0) {
      store_backend = argv[3];
    }
    const auto r = run_arm(/*zero_copy=*/true, /*arena=*/true, 256, 2,
                           /*rounds=*/100, store_backend);
    print_arm(r);
    if (store_backend == "memory" && r.allocs_per_msg > kSmokeAllocBudget) {
      std::cerr << "allocation budget exceeded: " << r.allocs_per_msg
                << " allocs/msg > " << kSmokeAllocBudget << "\n";
      return 1;
    }
    // Liveness gate: full delivery and a working frame cache.
    return (r.delivered == 200 && r.hit_rate > 0.5) ? 0 : 1;
  }

  std::vector<ArmResult> results;
  for (const std::size_t body : {std::size_t{256}, std::size_t{1024},
                                 std::size_t{4096}, std::size_t{65536}}) {
    for (const int fanout : {1, 8}) {
      // Keep per-arm wall clock comparable across body sizes.
      const int rounds = body >= 65536 ? 1500 : (body >= 4096 ? 4000 : 8000);
      for (const auto& [zero_copy, arena] :
           std::vector<std::pair<bool, bool>>{
               {false, false}, {false, true}, {true, false}, {true, true}}) {
        // The deep_copy+arena combo only matters where the arena can act
        // (small bodies); skip it on the big rows to bound wall clock.
        if (!zero_copy && arena && body > 1024) continue;
        const auto r = run_arm(zero_copy, arena, body, fanout, rounds);
        print_arm(r);
        results.push_back(r);
      }
    }
  }

  // E19 store grid: fast_path toggles, 1 KiB bodies, both durable engines
  // at sync=every_batch (equal durability) against the memory baseline.
  // Fewer rounds than the toggle grid — every batch fsyncs on both sides.
  for (const int fanout : {1, 8}) {
    for (const char* store : {"memory", "file", "segmented"}) {
      const auto r = run_arm(/*zero_copy=*/true, /*arena=*/true, 1024, fanout,
                             /*rounds=*/2000, store);
      print_arm(r);
      results.push_back(r);
    }
  }

  double deep_64k_f8 = 0.0, zero_64k_f8 = 0.0, zero_64k_f8_hit = 0.0;
  double zero_256_f8 = 0.0, fast_256_f8 = 0.0, fast_256_f8_allocs = 0.0,
         zero_256_f8_allocs = 0.0;
  for (const auto& r : results) {
    if (r.body_bytes == 65536 && r.fanout == 8) {
      if (std::strcmp(r.mode, "zero_copy") == 0) {
        zero_64k_f8 = r.msgs_per_sec;
        zero_64k_f8_hit = r.hit_rate;
      } else if (std::strcmp(r.mode, "deep_copy") == 0) {
        deep_64k_f8 = r.msgs_per_sec;
      }
    }
    if (r.body_bytes == 256 && r.fanout == 8) {
      if (std::strcmp(r.mode, "fast_path") == 0) {
        fast_256_f8 = r.msgs_per_sec;
        fast_256_f8_allocs = r.allocs_per_msg;
      } else if (std::strcmp(r.mode, "zero_copy") == 0) {
        zero_256_f8 = r.msgs_per_sec;
        zero_256_f8_allocs = r.allocs_per_msg;
      }
    }
  }
  const double speedup = deep_64k_f8 > 0.0 ? zero_64k_f8 / deep_64k_f8 : 0.0;
  const double fast_speedup =
      zero_256_f8 > 0.0 ? fast_256_f8 / zero_256_f8 : 0.0;

  // Store-grid headline cells (1 KiB fast_path, fanout 8).
  double store_mem_f8 = 0.0, store_file_f8 = 0.0, store_seg_f8 = 0.0;
  double store_seg_f8_allocs = 0.0;
  for (const auto& r : results) {
    if (r.body_bytes != 1024 || r.fanout != 8 ||
        std::strcmp(r.mode, "fast_path") != 0) {
      continue;
    }
    if (r.store == "file") {
      store_file_f8 = r.msgs_per_sec;
    } else if (r.store == "segmented") {
      store_seg_f8 = r.msgs_per_sec;
      store_seg_f8_allocs = r.allocs_per_msg;
    } else if (r.store == "memory") {
      store_mem_f8 = r.msgs_per_sec;  // last wins: the store-grid row,
                                      // measured at the same round count
    }
  }
  const double durability_tax =
      store_seg_f8 > 0.0 ? store_mem_f8 / store_seg_f8 : 0.0;

  std::ofstream out("BENCH_msg_path.json");
  out << "{\"bench\": \"msg_path\", \"arms\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i > 0) out << ", ";
    out << "{\"mode\": \"" << r.mode << "\", \"store\": \"" << r.store
        << "\", \"body_bytes\": " << r.body_bytes
        << ", \"fanout\": " << r.fanout
        << ", \"delivered_msgs_per_sec\": " << r.msgs_per_sec
        << ", \"delivered\": " << r.delivered
        << ", \"duration_s\": " << r.duration_s
        << ", \"serializations\": " << r.serializations
        << ", \"serializations_per_msg\": "
        << (r.delivered > 0
                ? static_cast<double>(r.serializations) / r.delivered
                : 0.0)
        << ", \"allocs_per_msg\": " << r.allocs_per_msg
        << ", \"arena_hits\": " << r.arena_hits
        << ", \"arena_misses\": " << r.arena_misses
        << ", \"arena_hit_rate\": " << r.arena_hit_rate
        << ", \"frame_cache_hits\": " << r.cache_hits
        << ", \"frame_cache_misses\": " << r.cache_misses
        << ", \"frame_cache_fills\": " << r.cache_fills
        << ", \"frame_cache_patches\": " << r.cache_patches
        << ", \"frame_cache_hit_rate\": " << r.hit_rate << "}";
  }
  out << "], \"headline\": {\"body_bytes\": 65536, \"fanout\": 8, "
      << "\"deep_copy_msgs_per_sec\": " << deep_64k_f8
      << ", \"zero_copy_msgs_per_sec\": " << zero_64k_f8
      << ", \"speedup\": " << speedup
      << ", \"zero_copy_frame_cache_hit_rate\": " << zero_64k_f8_hit
      << "}, \"headline_fast_path\": {\"body_bytes\": 256, \"fanout\": 8, "
      << "\"zero_copy_msgs_per_sec\": " << zero_256_f8
      << ", \"fast_path_msgs_per_sec\": " << fast_256_f8
      << ", \"speedup\": " << fast_speedup
      << ", \"zero_copy_allocs_per_msg\": " << zero_256_f8_allocs
      << ", \"fast_path_allocs_per_msg\": " << fast_256_f8_allocs
      << "}, \"headline_store\": {\"body_bytes\": 1024, \"fanout\": 8, "
      << "\"sync\": \"every_batch\", "
      << "\"memory_msgs_per_sec\": " << store_mem_f8
      << ", \"file_msgs_per_sec\": " << store_file_f8
      << ", \"segmented_msgs_per_sec\": " << store_seg_f8
      << ", \"segmented_allocs_per_msg\": " << store_seg_f8_allocs
      << ", \"durability_tax\": " << durability_tax << "}}\n";
  std::cout << "BENCH_msg_path.json: 64KiB fanout-8 speedup = " << speedup
            << "x, hit_rate = " << zero_64k_f8_hit << "\n";
  std::cout << "BENCH_msg_path.json: 256B fanout-8 fast-path speedup = "
            << fast_speedup << "x (allocs/msg " << zero_256_f8_allocs
            << " -> " << fast_256_f8_allocs << ")\n";
  std::cout << "BENCH_msg_path.json: 1KiB fanout-8 durability tax = "
            << durability_tax << "x (memory/segmented, sync=every_batch)\n";
  return 0;
}
