# Empty compiler generated dependencies file for bench_evaluation.
# This may be replaced when dependencies are built.
