file(REMOVE_RECURSE
  "CMakeFiles/bench_evaluation.dir/bench_evaluation.cpp.o"
  "CMakeFiles/bench_evaluation.dir/bench_evaluation.cpp.o.d"
  "bench_evaluation"
  "bench_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
