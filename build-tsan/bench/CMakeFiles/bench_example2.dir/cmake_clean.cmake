file(REMOVE_RECURSE
  "CMakeFiles/bench_example2.dir/bench_example2.cpp.o"
  "CMakeFiles/bench_example2.dir/bench_example2.cpp.o.d"
  "bench_example2"
  "bench_example2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
