# Empty dependencies file for bench_example2.
# This may be replaced when dependencies are built.
