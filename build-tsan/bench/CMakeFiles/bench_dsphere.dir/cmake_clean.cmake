file(REMOVE_RECURSE
  "CMakeFiles/bench_dsphere.dir/bench_dsphere.cpp.o"
  "CMakeFiles/bench_dsphere.dir/bench_dsphere.cpp.o.d"
  "bench_dsphere"
  "bench_dsphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
