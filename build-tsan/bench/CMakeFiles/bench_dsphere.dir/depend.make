# Empty dependencies file for bench_dsphere.
# This may be replaced when dependencies are built.
