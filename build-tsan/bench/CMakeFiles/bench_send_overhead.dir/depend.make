# Empty dependencies file for bench_send_overhead.
# This may be replaced when dependencies are built.
