file(REMOVE_RECURSE
  "CMakeFiles/bench_send_overhead.dir/bench_send_overhead.cpp.o"
  "CMakeFiles/bench_send_overhead.dir/bench_send_overhead.cpp.o.d"
  "bench_send_overhead"
  "bench_send_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_send_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
