file(REMOVE_RECURSE
  "CMakeFiles/bench_condition.dir/bench_condition.cpp.o"
  "CMakeFiles/bench_condition.dir/bench_condition.cpp.o.d"
  "bench_condition"
  "bench_condition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_condition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
