# Empty compiler generated dependencies file for bench_condition.
# This may be replaced when dependencies are built.
