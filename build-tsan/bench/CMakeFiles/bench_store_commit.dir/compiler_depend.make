# Empty compiler generated dependencies file for bench_store_commit.
# This may be replaced when dependencies are built.
