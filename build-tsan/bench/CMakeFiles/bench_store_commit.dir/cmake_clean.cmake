file(REMOVE_RECURSE
  "CMakeFiles/bench_store_commit.dir/bench_store_commit.cpp.o"
  "CMakeFiles/bench_store_commit.dir/bench_store_commit.cpp.o.d"
  "bench_store_commit"
  "bench_store_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_store_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
