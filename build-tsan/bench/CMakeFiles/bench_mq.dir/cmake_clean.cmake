file(REMOVE_RECURSE
  "CMakeFiles/bench_mq.dir/bench_mq.cpp.o"
  "CMakeFiles/bench_mq.dir/bench_mq.cpp.o.d"
  "bench_mq"
  "bench_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
