# Empty compiler generated dependencies file for bench_mq.
# This may be replaced when dependencies are built.
