# Empty dependencies file for bench_ack_path.
# This may be replaced when dependencies are built.
