file(REMOVE_RECURSE
  "CMakeFiles/bench_ack_path.dir/bench_ack_path.cpp.o"
  "CMakeFiles/bench_ack_path.dir/bench_ack_path.cpp.o.d"
  "bench_ack_path"
  "bench_ack_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ack_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
