file(REMOVE_RECURSE
  "CMakeFiles/conditional_pubsub.dir/conditional_pubsub.cpp.o"
  "CMakeFiles/conditional_pubsub.dir/conditional_pubsub.cpp.o.d"
  "conditional_pubsub"
  "conditional_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
