# Empty dependencies file for conditional_pubsub.
# This may be replaced when dependencies are built.
