file(REMOVE_RECURSE
  "CMakeFiles/meeting_scheduler.dir/meeting_scheduler.cpp.o"
  "CMakeFiles/meeting_scheduler.dir/meeting_scheduler.cpp.o.d"
  "meeting_scheduler"
  "meeting_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meeting_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
