# Empty compiler generated dependencies file for meeting_scheduler.
# This may be replaced when dependencies are built.
