file(REMOVE_RECURSE
  "CMakeFiles/air_traffic.dir/air_traffic.cpp.o"
  "CMakeFiles/air_traffic.dir/air_traffic.cpp.o.d"
  "air_traffic"
  "air_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
