# Empty compiler generated dependencies file for air_traffic.
# This may be replaced when dependencies are built.
