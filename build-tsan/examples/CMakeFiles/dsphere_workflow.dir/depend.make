# Empty dependencies file for dsphere_workflow.
# This may be replaced when dependencies are built.
