file(REMOVE_RECURSE
  "CMakeFiles/dsphere_workflow.dir/dsphere_workflow.cpp.o"
  "CMakeFiles/dsphere_workflow.dir/dsphere_workflow.cpp.o.d"
  "dsphere_workflow"
  "dsphere_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsphere_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
