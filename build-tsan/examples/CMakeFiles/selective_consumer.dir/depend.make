# Empty dependencies file for selective_consumer.
# This may be replaced when dependencies are built.
