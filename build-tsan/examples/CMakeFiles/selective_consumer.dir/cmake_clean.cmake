file(REMOVE_RECURSE
  "CMakeFiles/selective_consumer.dir/selective_consumer.cpp.o"
  "CMakeFiles/selective_consumer.dir/selective_consumer.cpp.o.d"
  "selective_consumer"
  "selective_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
