# Empty compiler generated dependencies file for system_inspector.
# This may be replaced when dependencies are built.
