file(REMOVE_RECURSE
  "CMakeFiles/system_inspector.dir/system_inspector.cpp.o"
  "CMakeFiles/system_inspector.dir/system_inspector.cpp.o.d"
  "system_inspector"
  "system_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
