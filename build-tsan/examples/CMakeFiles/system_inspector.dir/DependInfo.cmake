
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/system_inspector.cpp" "examples/CMakeFiles/system_inspector.dir/system_inspector.cpp.o" "gcc" "examples/CMakeFiles/system_inspector.dir/system_inspector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ds/CMakeFiles/cmx_ds.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cm/CMakeFiles/cmx_cm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/txn/CMakeFiles/cmx_txn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mq/CMakeFiles/cmx_mq.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baseline/CMakeFiles/cmx_baseline.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/cmx_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
