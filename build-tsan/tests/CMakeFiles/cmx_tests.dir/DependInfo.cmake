
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ablation_test.cpp" "tests/CMakeFiles/cmx_tests.dir/ablation_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/ablation_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/cmx_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/cm_end2end_test.cpp" "tests/CMakeFiles/cmx_tests.dir/cm_end2end_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/cm_end2end_test.cpp.o.d"
  "/root/repo/tests/concurrency_test.cpp" "tests/CMakeFiles/cmx_tests.dir/concurrency_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/concurrency_test.cpp.o.d"
  "/root/repo/tests/condition_test.cpp" "tests/CMakeFiles/cmx_tests.dir/condition_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/condition_test.cpp.o.d"
  "/root/repo/tests/condition_text_test.cpp" "tests/CMakeFiles/cmx_tests.dir/condition_text_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/condition_text_test.cpp.o.d"
  "/root/repo/tests/dispatcher_test.cpp" "tests/CMakeFiles/cmx_tests.dir/dispatcher_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/dispatcher_test.cpp.o.d"
  "/root/repo/tests/dsphere_test.cpp" "tests/CMakeFiles/cmx_tests.dir/dsphere_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/dsphere_test.cpp.o.d"
  "/root/repo/tests/durability_e2e_test.cpp" "tests/CMakeFiles/cmx_tests.dir/durability_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/durability_e2e_test.cpp.o.d"
  "/root/repo/tests/eval_oracle_test.cpp" "tests/CMakeFiles/cmx_tests.dir/eval_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/eval_oracle_test.cpp.o.d"
  "/root/repo/tests/eval_state_test.cpp" "tests/CMakeFiles/cmx_tests.dir/eval_state_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/eval_state_test.cpp.o.d"
  "/root/repo/tests/fault_injection_test.cpp" "tests/CMakeFiles/cmx_tests.dir/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/fault_injection_test.cpp.o.d"
  "/root/repo/tests/guaranteed_compensation_test.cpp" "tests/CMakeFiles/cmx_tests.dir/guaranteed_compensation_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/guaranteed_compensation_test.cpp.o.d"
  "/root/repo/tests/introspect_test.cpp" "tests/CMakeFiles/cmx_tests.dir/introspect_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/introspect_test.cpp.o.d"
  "/root/repo/tests/message_test.cpp" "tests/CMakeFiles/cmx_tests.dir/message_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/message_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/cmx_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/obs_test.cpp" "tests/CMakeFiles/cmx_tests.dir/obs_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/obs_test.cpp.o.d"
  "/root/repo/tests/pubsub_test.cpp" "tests/CMakeFiles/cmx_tests.dir/pubsub_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/pubsub_test.cpp.o.d"
  "/root/repo/tests/queue_manager_test.cpp" "tests/CMakeFiles/cmx_tests.dir/queue_manager_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/queue_manager_test.cpp.o.d"
  "/root/repo/tests/queue_test.cpp" "tests/CMakeFiles/cmx_tests.dir/queue_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/queue_test.cpp.o.d"
  "/root/repo/tests/selector_test.cpp" "tests/CMakeFiles/cmx_tests.dir/selector_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/selector_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/cmx_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/store_test.cpp" "tests/CMakeFiles/cmx_tests.dir/store_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/store_test.cpp.o.d"
  "/root/repo/tests/txn_test.cpp" "tests/CMakeFiles/cmx_tests.dir/txn_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/txn_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/cmx_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/cmx_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/cmx_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baseline/CMakeFiles/cmx_baseline.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ds/CMakeFiles/cmx_ds.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cm/CMakeFiles/cmx_cm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/txn/CMakeFiles/cmx_txn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mq/CMakeFiles/cmx_mq.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/cmx_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
