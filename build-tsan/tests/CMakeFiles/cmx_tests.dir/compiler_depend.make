# Empty compiler generated dependencies file for cmx_tests.
# This may be replaced when dependencies are built.
