file(REMOVE_RECURSE
  "libcmx_txn.a"
)
