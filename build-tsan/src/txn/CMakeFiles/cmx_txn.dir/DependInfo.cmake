
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/coordinator.cpp" "src/txn/CMakeFiles/cmx_txn.dir/coordinator.cpp.o" "gcc" "src/txn/CMakeFiles/cmx_txn.dir/coordinator.cpp.o.d"
  "/root/repo/src/txn/kvstore.cpp" "src/txn/CMakeFiles/cmx_txn.dir/kvstore.cpp.o" "gcc" "src/txn/CMakeFiles/cmx_txn.dir/kvstore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/cmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
