file(REMOVE_RECURSE
  "CMakeFiles/cmx_txn.dir/coordinator.cpp.o"
  "CMakeFiles/cmx_txn.dir/coordinator.cpp.o.d"
  "CMakeFiles/cmx_txn.dir/kvstore.cpp.o"
  "CMakeFiles/cmx_txn.dir/kvstore.cpp.o.d"
  "libcmx_txn.a"
  "libcmx_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
