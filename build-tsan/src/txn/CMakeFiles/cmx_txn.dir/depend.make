# Empty dependencies file for cmx_txn.
# This may be replaced when dependencies are built.
