file(REMOVE_RECURSE
  "CMakeFiles/cmx_sim.dir/workload.cpp.o"
  "CMakeFiles/cmx_sim.dir/workload.cpp.o.d"
  "libcmx_sim.a"
  "libcmx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
