file(REMOVE_RECURSE
  "libcmx_sim.a"
)
