# Empty dependencies file for cmx_sim.
# This may be replaced when dependencies are built.
