file(REMOVE_RECURSE
  "CMakeFiles/cmx_mq.dir/channel.cpp.o"
  "CMakeFiles/cmx_mq.dir/channel.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/message.cpp.o"
  "CMakeFiles/cmx_mq.dir/message.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/network.cpp.o"
  "CMakeFiles/cmx_mq.dir/network.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/pubsub.cpp.o"
  "CMakeFiles/cmx_mq.dir/pubsub.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/queue.cpp.o"
  "CMakeFiles/cmx_mq.dir/queue.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/queue_manager.cpp.o"
  "CMakeFiles/cmx_mq.dir/queue_manager.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/selector.cpp.o"
  "CMakeFiles/cmx_mq.dir/selector.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/session.cpp.o"
  "CMakeFiles/cmx_mq.dir/session.cpp.o.d"
  "CMakeFiles/cmx_mq.dir/store.cpp.o"
  "CMakeFiles/cmx_mq.dir/store.cpp.o.d"
  "libcmx_mq.a"
  "libcmx_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
