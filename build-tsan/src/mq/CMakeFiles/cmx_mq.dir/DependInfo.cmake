
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mq/channel.cpp" "src/mq/CMakeFiles/cmx_mq.dir/channel.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/channel.cpp.o.d"
  "/root/repo/src/mq/message.cpp" "src/mq/CMakeFiles/cmx_mq.dir/message.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/message.cpp.o.d"
  "/root/repo/src/mq/network.cpp" "src/mq/CMakeFiles/cmx_mq.dir/network.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/network.cpp.o.d"
  "/root/repo/src/mq/pubsub.cpp" "src/mq/CMakeFiles/cmx_mq.dir/pubsub.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/pubsub.cpp.o.d"
  "/root/repo/src/mq/queue.cpp" "src/mq/CMakeFiles/cmx_mq.dir/queue.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/queue.cpp.o.d"
  "/root/repo/src/mq/queue_manager.cpp" "src/mq/CMakeFiles/cmx_mq.dir/queue_manager.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/queue_manager.cpp.o.d"
  "/root/repo/src/mq/selector.cpp" "src/mq/CMakeFiles/cmx_mq.dir/selector.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/selector.cpp.o.d"
  "/root/repo/src/mq/session.cpp" "src/mq/CMakeFiles/cmx_mq.dir/session.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/session.cpp.o.d"
  "/root/repo/src/mq/store.cpp" "src/mq/CMakeFiles/cmx_mq.dir/store.cpp.o" "gcc" "src/mq/CMakeFiles/cmx_mq.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/obs/CMakeFiles/cmx_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
