# Empty dependencies file for cmx_mq.
# This may be replaced when dependencies are built.
