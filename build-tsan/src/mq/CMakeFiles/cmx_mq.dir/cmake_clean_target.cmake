file(REMOVE_RECURSE
  "libcmx_mq.a"
)
