file(REMOVE_RECURSE
  "CMakeFiles/cmx_baseline.dir/app_managed.cpp.o"
  "CMakeFiles/cmx_baseline.dir/app_managed.cpp.o.d"
  "CMakeFiles/cmx_baseline.dir/coyote.cpp.o"
  "CMakeFiles/cmx_baseline.dir/coyote.cpp.o.d"
  "libcmx_baseline.a"
  "libcmx_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
