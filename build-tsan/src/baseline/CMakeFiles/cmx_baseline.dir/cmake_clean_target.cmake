file(REMOVE_RECURSE
  "libcmx_baseline.a"
)
