# Empty compiler generated dependencies file for cmx_baseline.
# This may be replaced when dependencies are built.
