
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/app_managed.cpp" "src/baseline/CMakeFiles/cmx_baseline.dir/app_managed.cpp.o" "gcc" "src/baseline/CMakeFiles/cmx_baseline.dir/app_managed.cpp.o.d"
  "/root/repo/src/baseline/coyote.cpp" "src/baseline/CMakeFiles/cmx_baseline.dir/coyote.cpp.o" "gcc" "src/baseline/CMakeFiles/cmx_baseline.dir/coyote.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mq/CMakeFiles/cmx_mq.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cmx_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/cmx_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
