file(REMOVE_RECURSE
  "libcmx_cm.a"
)
