# Empty compiler generated dependencies file for cmx_cm.
# This may be replaced when dependencies are built.
