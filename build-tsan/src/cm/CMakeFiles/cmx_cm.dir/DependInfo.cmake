
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cm/compensation_manager.cpp" "src/cm/CMakeFiles/cmx_cm.dir/compensation_manager.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/compensation_manager.cpp.o.d"
  "/root/repo/src/cm/condition.cpp" "src/cm/CMakeFiles/cmx_cm.dir/condition.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/condition.cpp.o.d"
  "/root/repo/src/cm/condition_text.cpp" "src/cm/CMakeFiles/cmx_cm.dir/condition_text.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/condition_text.cpp.o.d"
  "/root/repo/src/cm/conditional_publisher.cpp" "src/cm/CMakeFiles/cmx_cm.dir/conditional_publisher.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/conditional_publisher.cpp.o.d"
  "/root/repo/src/cm/control.cpp" "src/cm/CMakeFiles/cmx_cm.dir/control.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/control.cpp.o.d"
  "/root/repo/src/cm/eval_state.cpp" "src/cm/CMakeFiles/cmx_cm.dir/eval_state.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/eval_state.cpp.o.d"
  "/root/repo/src/cm/evaluation_manager.cpp" "src/cm/CMakeFiles/cmx_cm.dir/evaluation_manager.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/evaluation_manager.cpp.o.d"
  "/root/repo/src/cm/introspect.cpp" "src/cm/CMakeFiles/cmx_cm.dir/introspect.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/introspect.cpp.o.d"
  "/root/repo/src/cm/outcome_dispatcher.cpp" "src/cm/CMakeFiles/cmx_cm.dir/outcome_dispatcher.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/outcome_dispatcher.cpp.o.d"
  "/root/repo/src/cm/receiver.cpp" "src/cm/CMakeFiles/cmx_cm.dir/receiver.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/receiver.cpp.o.d"
  "/root/repo/src/cm/sender.cpp" "src/cm/CMakeFiles/cmx_cm.dir/sender.cpp.o" "gcc" "src/cm/CMakeFiles/cmx_cm.dir/sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mq/CMakeFiles/cmx_mq.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/obs/CMakeFiles/cmx_obs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/cmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
