file(REMOVE_RECURSE
  "CMakeFiles/cmx_cm.dir/compensation_manager.cpp.o"
  "CMakeFiles/cmx_cm.dir/compensation_manager.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/condition.cpp.o"
  "CMakeFiles/cmx_cm.dir/condition.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/condition_text.cpp.o"
  "CMakeFiles/cmx_cm.dir/condition_text.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/conditional_publisher.cpp.o"
  "CMakeFiles/cmx_cm.dir/conditional_publisher.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/control.cpp.o"
  "CMakeFiles/cmx_cm.dir/control.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/eval_state.cpp.o"
  "CMakeFiles/cmx_cm.dir/eval_state.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/evaluation_manager.cpp.o"
  "CMakeFiles/cmx_cm.dir/evaluation_manager.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/introspect.cpp.o"
  "CMakeFiles/cmx_cm.dir/introspect.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/outcome_dispatcher.cpp.o"
  "CMakeFiles/cmx_cm.dir/outcome_dispatcher.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/receiver.cpp.o"
  "CMakeFiles/cmx_cm.dir/receiver.cpp.o.d"
  "CMakeFiles/cmx_cm.dir/sender.cpp.o"
  "CMakeFiles/cmx_cm.dir/sender.cpp.o.d"
  "libcmx_cm.a"
  "libcmx_cm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_cm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
