
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/clock.cpp" "src/util/CMakeFiles/cmx_util.dir/clock.cpp.o" "gcc" "src/util/CMakeFiles/cmx_util.dir/clock.cpp.o.d"
  "/root/repo/src/util/codec.cpp" "src/util/CMakeFiles/cmx_util.dir/codec.cpp.o" "gcc" "src/util/CMakeFiles/cmx_util.dir/codec.cpp.o.d"
  "/root/repo/src/util/id.cpp" "src/util/CMakeFiles/cmx_util.dir/id.cpp.o" "gcc" "src/util/CMakeFiles/cmx_util.dir/id.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/cmx_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/cmx_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/util/CMakeFiles/cmx_util.dir/random.cpp.o" "gcc" "src/util/CMakeFiles/cmx_util.dir/random.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/util/CMakeFiles/cmx_util.dir/status.cpp.o" "gcc" "src/util/CMakeFiles/cmx_util.dir/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
