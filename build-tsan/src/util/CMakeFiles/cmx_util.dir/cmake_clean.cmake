file(REMOVE_RECURSE
  "CMakeFiles/cmx_util.dir/clock.cpp.o"
  "CMakeFiles/cmx_util.dir/clock.cpp.o.d"
  "CMakeFiles/cmx_util.dir/codec.cpp.o"
  "CMakeFiles/cmx_util.dir/codec.cpp.o.d"
  "CMakeFiles/cmx_util.dir/id.cpp.o"
  "CMakeFiles/cmx_util.dir/id.cpp.o.d"
  "CMakeFiles/cmx_util.dir/logging.cpp.o"
  "CMakeFiles/cmx_util.dir/logging.cpp.o.d"
  "CMakeFiles/cmx_util.dir/random.cpp.o"
  "CMakeFiles/cmx_util.dir/random.cpp.o.d"
  "CMakeFiles/cmx_util.dir/status.cpp.o"
  "CMakeFiles/cmx_util.dir/status.cpp.o.d"
  "libcmx_util.a"
  "libcmx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
