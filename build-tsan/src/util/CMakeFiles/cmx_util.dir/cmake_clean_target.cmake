file(REMOVE_RECURSE
  "libcmx_util.a"
)
