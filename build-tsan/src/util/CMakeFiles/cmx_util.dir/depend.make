# Empty dependencies file for cmx_util.
# This may be replaced when dependencies are built.
