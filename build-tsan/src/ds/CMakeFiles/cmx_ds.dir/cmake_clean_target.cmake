file(REMOVE_RECURSE
  "libcmx_ds.a"
)
