# Empty dependencies file for cmx_ds.
# This may be replaced when dependencies are built.
