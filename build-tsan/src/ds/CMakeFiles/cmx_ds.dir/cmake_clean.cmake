file(REMOVE_RECURSE
  "CMakeFiles/cmx_ds.dir/dsphere.cpp.o"
  "CMakeFiles/cmx_ds.dir/dsphere.cpp.o.d"
  "libcmx_ds.a"
  "libcmx_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
