# Empty dependencies file for cmx_obs.
# This may be replaced when dependencies are built.
