file(REMOVE_RECURSE
  "CMakeFiles/cmx_obs.dir/export.cpp.o"
  "CMakeFiles/cmx_obs.dir/export.cpp.o.d"
  "CMakeFiles/cmx_obs.dir/histogram.cpp.o"
  "CMakeFiles/cmx_obs.dir/histogram.cpp.o.d"
  "CMakeFiles/cmx_obs.dir/lifecycle.cpp.o"
  "CMakeFiles/cmx_obs.dir/lifecycle.cpp.o.d"
  "CMakeFiles/cmx_obs.dir/registry.cpp.o"
  "CMakeFiles/cmx_obs.dir/registry.cpp.o.d"
  "libcmx_obs.a"
  "libcmx_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmx_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
