
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/export.cpp" "src/obs/CMakeFiles/cmx_obs.dir/export.cpp.o" "gcc" "src/obs/CMakeFiles/cmx_obs.dir/export.cpp.o.d"
  "/root/repo/src/obs/histogram.cpp" "src/obs/CMakeFiles/cmx_obs.dir/histogram.cpp.o" "gcc" "src/obs/CMakeFiles/cmx_obs.dir/histogram.cpp.o.d"
  "/root/repo/src/obs/lifecycle.cpp" "src/obs/CMakeFiles/cmx_obs.dir/lifecycle.cpp.o" "gcc" "src/obs/CMakeFiles/cmx_obs.dir/lifecycle.cpp.o.d"
  "/root/repo/src/obs/registry.cpp" "src/obs/CMakeFiles/cmx_obs.dir/registry.cpp.o" "gcc" "src/obs/CMakeFiles/cmx_obs.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/cmx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
