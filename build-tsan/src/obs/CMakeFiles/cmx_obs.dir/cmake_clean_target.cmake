file(REMOVE_RECURSE
  "libcmx_obs.a"
)
